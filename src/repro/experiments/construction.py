"""Experiments E2/E3/E10: the hard-instance construction, audited.

* E2 -- Theorem 2.1 claims (i) and (ii): node counts within the proof's
  explicit bracket, max degree exactly 3, and the degree-3 graph
  simulating the weighted graph's metric.
* E3 -- Lemma 2.2: uniqueness + midpoint over *all* valid pairs.
* E10 -- the Section 4 degree reduction: distances preserved, max
  degree ``<= ceil(m/n) + 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import theorem_21_node_count_bounds
from ..core.degree_reduction import reduce_degree
from ..graphs import (
    count_shortest_paths,
    random_sparse_graph,
    shortest_path,
    shortest_path_distances,
)
from ..lowerbound import build_degree3_instance
from .tables import Table

__all__ = [
    "ConstructionAudit",
    "audit_construction",
    "construction_table",
    "DegreeReductionAudit",
    "audit_degree_reduction",
    "degree_reduction_table",
]


@dataclass
class ConstructionAudit:
    b: int
    ell: int
    num_vertices: int
    count_lower: int
    count_upper: int
    max_degree: int
    lemma_pairs_checked: int
    lemma_all_unique: bool
    lemma_all_through_midpoint: bool
    lemma_all_lengths_match: bool

    @property
    def claims_hold(self) -> bool:
        return (
            self.count_lower <= self.num_vertices <= self.count_upper
            and self.max_degree == 3
            and self.lemma_all_unique
            and self.lemma_all_through_midpoint
            and self.lemma_all_lengths_match
        )


def audit_construction(b: int, ell: int, *, use_degree3: bool = True) -> ConstructionAudit:
    """Build the instance and check every Theorem 2.1 / Lemma 2.2 claim.

    ``use_degree3=False`` runs the Lemma 2.2 sweep on the weighted
    ``H_{b,l}`` (much faster); ``True`` runs it on ``G_{b,l}`` itself.
    """
    inst = build_degree3_instance(b, ell)
    lay = inst.layered
    graph = inst.graph if use_degree3 else lay.graph
    top = 2 * ell
    pairs = 0
    all_unique = True
    all_midpoint = True
    all_lengths = True
    for x, z in lay.lemma_pairs():
        pairs += 1
        if use_degree3:
            vx = inst.core_vertex(0, x)
            vz = inst.core_vertex(top, z)
            mid = inst.core_vertex(ell, lay.midpoint(x, z))
        else:
            vx = lay.vertex(0, x)
            vz = lay.vertex(top, z)
            mid = lay.vertex(ell, lay.midpoint(x, z))
        dist, count = count_shortest_paths(graph, vx)
        if count[vz] != 1:
            all_unique = False
        if dist[vz] != lay.unique_path_length(x, z):
            all_lengths = False
        path = shortest_path(graph, vx, vz)
        if path is None or mid not in path:
            all_midpoint = False
    lower, upper = theorem_21_node_count_bounds(b, ell)
    return ConstructionAudit(
        b=b,
        ell=ell,
        num_vertices=inst.graph.num_vertices,
        count_lower=lower,
        count_upper=upper,
        max_degree=inst.graph.max_degree(),
        lemma_pairs_checked=pairs,
        lemma_all_unique=all_unique,
        lemma_all_through_midpoint=all_midpoint,
        lemma_all_lengths_match=all_lengths,
    )


def construction_table(audits: List[ConstructionAudit]) -> Table:
    table = Table(
        "E2/E3: Theorem 2.1 (i)-(ii) and Lemma 2.2",
        [
            "b",
            "l",
            "n",
            "bracket",
            "max_deg (paper: 3)",
            "lemma pairs",
            "unique",
            "midpoint",
            "length",
        ],
    )
    for a in audits:
        table.add_row(
            a.b,
            a.ell,
            a.num_vertices,
            f"[{a.count_lower}, {a.count_upper}]",
            a.max_degree,
            a.lemma_pairs_checked,
            a.lemma_all_unique,
            a.lemma_all_through_midpoint,
            a.lemma_all_lengths_match,
        )
    return table


@dataclass
class DegreeReductionAudit:
    n: int
    m: int
    chunk: int
    reduced_n: int
    reduced_max_degree: int
    degree_bound: int
    distances_preserved: bool


def audit_degree_reduction(
    n: int = 60, seed: int = 0, avg_degree: float = 5.0
) -> DegreeReductionAudit:
    graph = random_sparse_graph(n, seed=seed, avg_degree=avg_degree)
    reduction = reduce_degree(graph)
    preserved = True
    for u in range(0, n, max(1, n // 8)):
        dist_orig, _ = shortest_path_distances(graph, u)
        dist_red, _ = shortest_path_distances(
            reduction.reduced, reduction.representative[u]
        )
        for v in range(n):
            if dist_orig[v] != dist_red[reduction.representative[v]]:
                preserved = False
    return DegreeReductionAudit(
        n=n,
        m=graph.num_edges,
        chunk=reduction.chunk,
        reduced_n=reduction.reduced.num_vertices,
        reduced_max_degree=reduction.reduced.max_degree(),
        degree_bound=reduction.chunk + 2,
        distances_preserved=preserved,
    )


def degree_reduction_table(audits: List[DegreeReductionAudit]) -> Table:
    table = Table(
        "E10: Section 4 degree reduction",
        [
            "n",
            "m",
            "chunk=ceil(m/n)",
            "reduced n",
            "max_deg",
            "bound",
            "metric preserved",
        ],
    )
    for a in audits:
        table.add_row(
            a.n,
            a.m,
            a.chunk,
            a.reduced_n,
            a.reduced_max_degree,
            a.degree_bound,
            a.distances_preserved,
        )
    return table
