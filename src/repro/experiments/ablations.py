"""Ablations over the design choices DESIGN.md calls out.

A. **RS scheme, threshold D**: the construction balances the hitting
   set (``~n log D / D`` per vertex) against the near-pair machinery
   (``D^5``-flavored).  Sweeping D exposes the trade-off the paper
   resolves with ``D = RS(n)^{1/6}``.
B. **RS scheme, vertex cover rule**: true minimum cover (Koenig) vs the
   matching-endpoints 2-approximation the proof's bound charges --
   measures how much the proof's slack costs in practice.
C. **PLL vertex order**: degree vs betweenness vs eccentricity vs
   coverage vs random across families -- the entire tuning surface of
   hierarchical labelings (Section 1.1's practical side).
D. **Hitting-set sample factor**: scaling ``|S|`` around the proof's
   ``(n/D) ln D`` shows the coverage cliff the constant sits on.
E. **Pruning slack**: redundant-hub elimination quantifies how much
   each construction over-provisions -- canonical PLL barely shrinks,
   the generic schemes shrink a lot.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from ..core import (
    betweenness_order,
    coverage_order,
    degree_order,
    eccentricity_order,
    is_valid_cover,
    prune_labeling,
    pruned_landmark_labeling,
    random_order,
    rs_hub_labeling,
    sparse_hub_labeling,
)
from ..core.hitting import hitting_set_size
from ..graphs import (
    Graph,
    grid_2d,
    hub_candidates_from_distances,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
    shortest_path_distances,
)
from ..graphs.traversal import INF
from .tables import Table

__all__ = [
    "ThresholdRow",
    "run_threshold_sweep",
    "threshold_table",
    "CoverRuleRow",
    "run_cover_rule",
    "cover_rule_table",
    "OrderRow",
    "run_order_ablation",
    "order_table",
    "SampleFactorRow",
    "run_sample_factor",
    "sample_factor_table",
    "PruningRow",
    "run_pruning_slack",
    "pruning_table",
    "GadgetRow",
    "run_gadget_effect",
    "gadget_table",
]


# ----------------------------------------------------------------------
# A. threshold sweep
# ----------------------------------------------------------------------
@dataclass
class ThresholdRow:
    threshold: int
    hitting_component: int
    corrections: int
    conflicts: int
    neighborhoods: int
    total: int
    valid: bool


def run_threshold_sweep(
    n: int = 100, thresholds: List[int] = (2, 3, 4, 5), seed: int = 0
) -> List[ThresholdRow]:
    graph = random_bounded_degree_graph(n, 3, seed=seed)
    rows = []
    for d in thresholds:
        result = rs_hub_labeling(graph, threshold=d, seed=seed)
        rows.append(
            ThresholdRow(
                threshold=d,
                hitting_component=len(result.hitting.hitting_set) * n,
                corrections=result.correction_total,
                conflicts=result.conflict_total,
                neighborhoods=result.neighborhood_total,
                total=result.labeling.total_size(),
                valid=is_valid_cover(graph, result.labeling),
            )
        )
    return rows


def threshold_table(rows: List[ThresholdRow]) -> Table:
    table = Table(
        "Ablation A: RS scheme threshold D",
        ["D", "n|S|", "sum|Q|", "sum|R|", "sum|N(F)|", "total", "valid"],
    )
    for r in rows:
        table.add_row(
            r.threshold,
            r.hitting_component,
            r.corrections,
            r.conflicts,
            r.neighborhoods,
            r.total,
            r.valid,
        )
    return table


# ----------------------------------------------------------------------
# B. cover rule
# ----------------------------------------------------------------------
@dataclass
class CoverRuleRow:
    rule: str
    charges: int
    neighborhoods: int
    total: int
    valid: bool


def run_cover_rule(n: int = 100, seed: int = 0) -> List[CoverRuleRow]:
    graph = random_bounded_degree_graph(n, 3, seed=seed)
    rows = []
    for rule in ("konig", "matching"):
        result = rs_hub_labeling(
            graph, threshold=3, seed=seed, cover_method=rule
        )
        rows.append(
            CoverRuleRow(
                rule=rule,
                charges=result.charge_total,
                neighborhoods=result.neighborhood_total,
                total=result.labeling.total_size(),
                valid=is_valid_cover(graph, result.labeling),
            )
        )
    return rows


def cover_rule_table(rows: List[CoverRuleRow]) -> Table:
    table = Table(
        "Ablation B: vertex-cover rule in Lemma 4.2 charging",
        ["rule", "sum|F|", "sum|N(F)|", "total", "valid"],
    )
    for r in rows:
        table.add_row(r.rule, r.charges, r.neighborhoods, r.total, r.valid)
    return table


# ----------------------------------------------------------------------
# C. PLL order
# ----------------------------------------------------------------------
@dataclass
class OrderRow:
    family: str
    order: str
    total: int
    max_label: int


def run_order_ablation(scale: int = 49, seed: int = 0) -> List[OrderRow]:
    side = max(3, int(round(math.sqrt(scale))))
    families: Dict[str, Graph] = {
        "grid": grid_2d(side, side),
        "tree": random_tree(scale, seed=seed),
        "sparse": random_sparse_graph(scale, seed=seed),
    }
    orders = {
        "degree": degree_order,
        "betweenness": betweenness_order,
        "eccentricity": eccentricity_order,
        "coverage": coverage_order,
        "random": lambda g: random_order(g, seed=seed),
    }
    rows = []
    for fam, graph in families.items():
        for name, fn in orders.items():
            labeling = pruned_landmark_labeling(graph, fn(graph))
            rows.append(
                OrderRow(
                    family=fam,
                    order=name,
                    total=labeling.total_size(),
                    max_label=labeling.max_size(),
                )
            )
    return rows


def order_table(rows: List[OrderRow]) -> Table:
    table = Table(
        "Ablation C: PLL vertex order",
        ["family", "order", "sum|S|", "max|S|"],
    )
    for r in rows:
        table.add_row(r.family, r.order, r.total, r.max_label)
    return table


# ----------------------------------------------------------------------
# D. hitting-set sample factor
# ----------------------------------------------------------------------
@dataclass
class SampleFactorRow:
    factor: float
    sample_size: int
    uncovered: int
    rich_pairs: int


def run_sample_factor(
    n: int = 120,
    threshold: int = 5,
    factors: List[float] = (0.25, 0.5, 1.0, 2.0),
    seed: int = 0,
) -> List[SampleFactorRow]:
    graph = random_sparse_graph(n, seed=seed)
    matrix = [
        shortest_path_distances(graph, v)[0] for v in graph.vertices()
    ]
    base = hitting_set_size(n, threshold)
    rng = random.Random(seed)
    rows = []
    for factor in factors:
        size = max(1, min(n, int(round(base * factor))))
        sample = set(rng.sample(range(n), size))
        uncovered = 0
        rich = 0
        for u in range(n):
            for v in range(u + 1, n):
                if matrix[u][v] == INF:
                    continue
                candidates = hub_candidates_from_distances(
                    matrix[u], matrix[v], matrix[u][v]
                )
                if len(candidates) < threshold:
                    continue
                rich += 1
                if sample.isdisjoint(candidates):
                    uncovered += 1
        rows.append(
            SampleFactorRow(
                factor=factor,
                sample_size=size,
                uncovered=uncovered,
                rich_pairs=rich,
            )
        )
    return rows


def sample_factor_table(rows: List[SampleFactorRow]) -> Table:
    table = Table(
        "Ablation D: hitting-set sample size vs (n/D) ln D",
        ["factor", "|S|", "rich pairs", "uncovered"],
    )
    for r in rows:
        table.add_row(r.factor, r.sample_size, r.rich_pairs, r.uncovered)
    return table


# ----------------------------------------------------------------------
# E. pruning slack
# ----------------------------------------------------------------------
@dataclass
class PruningRow:
    construction: str
    total_before: int
    total_after: int
    valid_after: bool

    @property
    def kept_fraction(self) -> float:
        if self.total_before == 0:
            return 1.0
        return self.total_after / self.total_before


def run_pruning_slack(n: int = 60, seed: int = 0) -> List[PruningRow]:
    graph = random_sparse_graph(n, seed=seed)
    constructions = {
        "pll": pruned_landmark_labeling(graph),
        "sparse-D": sparse_hub_labeling(graph, radius=3, seed=seed).labeling,
        "rs-scheme": rs_hub_labeling(graph, threshold=3, seed=seed).labeling,
    }
    rows = []
    for name, labeling in constructions.items():
        pruned = prune_labeling(graph, labeling)
        rows.append(
            PruningRow(
                construction=name,
                total_before=labeling.total_size(),
                total_after=pruned.total_size(),
                valid_after=is_valid_cover(graph, pruned),
            )
        )
    return rows


def pruning_table(rows: List[PruningRow]) -> Table:
    table = Table(
        "Ablation E: redundant-hub pruning slack",
        ["construction", "sum|S| before", "after", "kept", "valid"],
    )
    for r in rows:
        table.add_row(
            r.construction,
            r.total_before,
            r.total_after,
            r.kept_fraction,
            r.valid_after,
        )
    return table


# ----------------------------------------------------------------------
# F. gadget effect on the hard instances
# ----------------------------------------------------------------------
@dataclass
class GadgetRow:
    b: int
    ell: int
    h_vertices: int
    h_avg_hubs: float
    g_vertices: int
    g_avg_hubs: float

    @property
    def dilution(self) -> float:
        """How much the degree-3 gadget expansion dilutes the average."""
        if self.g_avg_hubs == 0:
            return 0.0
        return self.h_avg_hubs / self.g_avg_hubs


def run_gadget_effect(parameters=((1, 1), (2, 1), (1, 2))) -> List["GadgetRow"]:
    """Ablation F: label sizes on the weighted core ``H_{b,l}`` vs its
    degree-3 simulation ``G_{b,l}``.

    The lower bound lives on the grid structure; the gadget expansion
    inflates ``n`` (diluting the *average*) but cannot remove the forced
    midpoints -- both averages stay far above same-size easy graphs.
    """
    from ..lowerbound import build_degree3_instance

    rows = []
    for b, ell in parameters:
        inst = build_degree3_instance(b, ell)
        h_lab = pruned_landmark_labeling(inst.layered.graph)
        g_lab = pruned_landmark_labeling(inst.graph)
        rows.append(
            GadgetRow(
                b=b,
                ell=ell,
                h_vertices=inst.layered.graph.num_vertices,
                h_avg_hubs=h_lab.average_size(),
                g_vertices=inst.graph.num_vertices,
                g_avg_hubs=g_lab.average_size(),
            )
        )
    return rows


def gadget_table(rows: List["GadgetRow"]) -> Table:
    table = Table(
        "Ablation F: weighted core H vs degree-3 simulation G",
        ["b", "l", "|V(H)|", "H avg hubs", "|V(G)|", "G avg hubs", "H/G"],
    )
    for r in rows:
        table.add_row(
            r.b,
            r.ell,
            r.h_vertices,
            r.h_avg_hubs,
            r.g_vertices,
            r.g_avg_hubs,
            r.dilution,
        )
    return table
