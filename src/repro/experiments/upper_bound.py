"""Experiments E6/E7: the Theorem 4.1 construction and property (*).

E6 runs the RS-based scheme over sparse graphs and reports each proof
component next to its bound:

* ``n |S|``              vs  ``O(n^2 log D / D)``
* ``sum |Q_v|``          vs  ``n^2 / D``   (expectation)
* ``sum |R_v|``          vs  ``n^2 / D``   (expectation)
* ``sum |F_v|``          vs  ``O(D^5 n^2 / RS(n))`` (Lemma 4.2)
* total label size       vs  ``O(n^2 / RS(n)^{1/6} polylog)``

E7 isolates the hitting-set step: sampled ``|S| = (n/D) ln D`` leaves
at most ``~ n^2 / D`` rich pairs uncovered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..core import (
    build_hitting_set,
    is_valid_cover,
    rs_hub_labeling,
    theorem_14_average_hub_upper_bound,
)
from ..graphs import random_bounded_degree_graph, random_sparse_graph
from ..rs import rs_upper_bound
from .tables import Table

__all__ = [
    "UpperBoundRow",
    "run_upper_bound",
    "upper_bound_table",
    "HittingRow",
    "run_hitting",
    "hitting_table",
]


@dataclass
class UpperBoundRow:
    n: int
    threshold: int
    valid: bool
    hitting_component: int
    corrections: int
    corrections_bound: float
    conflicts: int
    conflicts_bound: float
    charges: int
    charges_bound: float
    total: int
    average: float
    theorem_curve: float


def run_upper_bound(
    sizes: List[int], *, threshold: int = 3, seed: int = 0
) -> List[UpperBoundRow]:
    rows: List[UpperBoundRow] = []
    for n in sizes:
        graph = random_bounded_degree_graph(n, 3, seed=seed)
        result = rs_hub_labeling(graph, threshold=threshold, seed=seed)
        d = result.threshold
        rs_value = rs_upper_bound(n)
        rows.append(
            UpperBoundRow(
                n=n,
                threshold=d,
                valid=is_valid_cover(graph, result.labeling),
                hitting_component=len(result.hitting.hitting_set) * n,
                corrections=result.correction_total,
                corrections_bound=n * n / d,
                conflicts=result.conflict_total,
                conflicts_bound=n * n / d,
                charges=result.charge_total,
                charges_bound=d ** 5 * n * n / rs_value,
                total=result.labeling.total_size(),
                average=result.labeling.average_size(),
                theorem_curve=theorem_14_average_hub_upper_bound(n),
            )
        )
    return rows


def upper_bound_table(rows: List[UpperBoundRow]) -> Table:
    table = Table(
        "E6: Theorem 4.1 components vs proof bounds (D = %d)"
        % (rows[0].threshold if rows else 0),
        [
            "n",
            "valid",
            "n|S|",
            "sum|Q| (<= ~n^2/D)",
            "sum|R| (<= ~n^2/D)",
            "sum|F| (<= D^5 n^2/RS)",
            "total",
            "avg",
            "Thm1.4 curve",
        ],
    )
    for r in rows:
        table.add_row(
            r.n,
            r.valid,
            r.hitting_component,
            f"{r.corrections} / {r.corrections_bound:.0f}",
            f"{r.conflicts} / {r.conflicts_bound:.0f}",
            f"{r.charges} / {r.charges_bound:.0f}",
            r.total,
            r.average,
            r.theorem_curve,
        )
    return table


@dataclass
class HittingRow:
    n: int
    threshold: int
    sample_size: int
    sample_formula: int
    rich_pairs: int
    uncovered: int
    uncovered_bound: float

    @property
    def within_bound(self) -> bool:
        # Expectation bound with 4x slack for a single sample.
        return self.uncovered <= 4 * self.uncovered_bound + 4


def run_hitting(
    sizes: List[int], *, threshold: int = 5, seed: int = 0
) -> List[HittingRow]:
    rows: List[HittingRow] = []
    for n in sizes:
        graph = random_sparse_graph(n, seed=seed)
        result = build_hitting_set(graph, threshold, seed=seed)
        rows.append(
            HittingRow(
                n=n,
                threshold=threshold,
                sample_size=len(result.hitting_set),
                sample_formula=math.ceil(n / threshold * math.log(threshold)),
                rich_pairs=result.num_rich_pairs,
                uncovered=result.num_uncovered,
                uncovered_bound=n * n / threshold,
            )
        )
    return rows


def hitting_table(rows: List[HittingRow]) -> Table:
    table = Table(
        "E7: property (*) -- random hitting sets for rich pairs",
        [
            "n",
            "D",
            "|S|",
            "(n/D)lnD",
            "rich pairs",
            "uncovered",
            "bound n^2/D",
            "within",
        ],
    )
    for r in rows:
        table.add_row(
            r.n,
            r.threshold,
            r.sample_size,
            r.sample_formula,
            r.rich_pairs,
            r.uncovered,
            r.uncovered_bound,
            r.within_bound,
        )
    return table
