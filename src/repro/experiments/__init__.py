"""Experiment runners: one module per row of DESIGN.md's index.

Each runner builds the relevant instances, measures the quantities the
paper claims, and returns both structured rows and a printable
:class:`~repro.experiments.tables.Table`.  The benchmark harness under
``benchmarks/`` and the example scripts both call into this package, so
EXPERIMENTS.md numbers are regenerable from either entry point.
"""

from .tables import Table
from .figure1 import Figure1Result, figure1_table, run_figure1
from .construction import (
    ConstructionAudit,
    DegreeReductionAudit,
    audit_construction,
    audit_degree_reduction,
    construction_table,
    degree_reduction_table,
)
from .lower_bound import (
    LowerBoundRow,
    PreviewRow,
    lower_bound_table,
    preview_table,
    run_certificate_preview,
    run_lower_bound,
)
from .sum_index import (
    ExactComplexityRow,
    SumIndexRow,
    exact_complexity_table,
    run_exact_complexity,
    run_sum_index,
    sum_index_table,
)
from .upper_bound import (
    HittingRow,
    UpperBoundRow,
    hitting_table,
    run_hitting,
    run_upper_bound,
    upper_bound_table,
)
from .rs_function import (
    ApFreeRow,
    RSGraphRow,
    ap_free_table,
    rs_graph_table,
    run_ap_free,
    run_rs_graphs,
)
from .baselines import (
    BaselineRow,
    MonotoneRow,
    baseline_table,
    monotone_table,
    run_baselines,
    run_monotone,
    standard_families,
)
from .oracle_tradeoff import OracleRow, oracle_table, run_oracles
from .bit_sizes import BitSizeRow, bit_size_table, run_bit_sizes
from .approximation import (
    ApproximationRow,
    approximation_table,
    run_approximation,
)
from .ablations import (
    CoverRuleRow,
    GadgetRow,
    PruningRow,
    OrderRow,
    SampleFactorRow,
    ThresholdRow,
    cover_rule_table,
    order_table,
    run_cover_rule,
    run_order_ablation,
    run_pruning_slack,
    run_sample_factor,
    run_threshold_sweep,
    run_gadget_effect,
    gadget_table,
    pruning_table,
    sample_factor_table,
    threshold_table,
)

__all__ = [
    "Table",
    "Figure1Result",
    "figure1_table",
    "run_figure1",
    "ConstructionAudit",
    "DegreeReductionAudit",
    "audit_construction",
    "audit_degree_reduction",
    "construction_table",
    "degree_reduction_table",
    "LowerBoundRow",
    "PreviewRow",
    "lower_bound_table",
    "preview_table",
    "run_certificate_preview",
    "run_lower_bound",
    "SumIndexRow",
    "run_sum_index",
    "sum_index_table",
    "ExactComplexityRow",
    "run_exact_complexity",
    "exact_complexity_table",
    "HittingRow",
    "UpperBoundRow",
    "hitting_table",
    "run_hitting",
    "run_upper_bound",
    "upper_bound_table",
    "ApFreeRow",
    "RSGraphRow",
    "ap_free_table",
    "rs_graph_table",
    "run_ap_free",
    "run_rs_graphs",
    "BaselineRow",
    "MonotoneRow",
    "baseline_table",
    "monotone_table",
    "run_baselines",
    "run_monotone",
    "standard_families",
    "OracleRow",
    "oracle_table",
    "run_oracles",
    "CoverRuleRow",
    "OrderRow",
    "SampleFactorRow",
    "ThresholdRow",
    "cover_rule_table",
    "order_table",
    "run_cover_rule",
    "run_order_ablation",
    "run_sample_factor",
    "run_threshold_sweep",
    "sample_factor_table",
    "threshold_table",
    "PruningRow",
    "run_pruning_slack",
    "pruning_table",
    "GadgetRow",
    "run_gadget_effect",
    "gadget_table",
    "ApproximationRow",
    "approximation_table",
    "run_approximation",
    "BitSizeRow",
    "bit_size_table",
    "run_bit_sizes",
]
