"""Tiny table rendering for the experiment runners.

Every experiment returns a :class:`Table`; the benchmark harness and the
example scripts print them, and EXPERIMENTS.md records them.  Plain
ASCII, no dependencies.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["Table"]


class Table:
    """A titled grid of rows with a header."""

    def __init__(self, title: str, header: Sequence[str]) -> None:
        self.title = title
        self.header = list(header)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.header):
            raise ValueError(
                f"expected {len(self.header)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.header]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
