"""Experiment E4: Theorem 2.1 (iii) / Theorem 1.1 -- measured vs certified.

For each instance ``G_{b,l}`` the runner reports:

* the certificate ``sum |S_v| >= s^{2l} 2^{-l} / ((3l+1) s^2 4l)``
  (explicit constants from the proof);
* measured total/average hub size of concrete labelings (PLL, the
  sparse scheme);
* the charging audit: every midpoint triplet charged to an endpoint's
  monotone closure -- the proof's accounting, executed on real data;
* the asymptotic reference curve ``n / 2^{3 sqrt(log n)}`` of
  Theorem 1.1.

The paper proves a *lower* bound, so the "shape" check is: measured
labelings always sit above the certificate, and the certificate grows
with the instance (``s^{2l-2}`` scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    pruned_landmark_labeling,
    sparse_hub_labeling,
    theorem_11_average_hub_lower_bound,
)
from ..lowerbound import (
    audit_labeling,
    build_degree3_instance,
    certificate_for,
)
from .tables import Table

__all__ = [
    "LowerBoundRow",
    "run_lower_bound",
    "lower_bound_table",
    "PreviewRow",
    "run_certificate_preview",
    "preview_table",
]


@dataclass
class LowerBoundRow:
    b: int
    ell: int
    num_vertices: int
    certificate_total: float
    measured_pll_total: int
    measured_sparse_total: Optional[int]
    triplets: int
    triplets_charged: int
    asymptotic_curve: float

    @property
    def pll_respects_bound(self) -> bool:
        return self.measured_pll_total >= self.certificate_total

    @property
    def all_charged(self) -> bool:
        return self.triplets_charged == self.triplets


def run_lower_bound(
    parameters: List, *, with_sparse: bool = True, with_audit: bool = True
) -> List[LowerBoundRow]:
    """Run E4 for each ``(b, l)`` pair in ``parameters``."""
    rows: List[LowerBoundRow] = []
    for b, ell in parameters:
        inst = build_degree3_instance(b, ell)
        cert = certificate_for(inst)
        pll = pruned_landmark_labeling(inst.graph)
        sparse_total: Optional[int] = None
        if with_sparse:
            sparse_total = sparse_hub_labeling(
                inst.graph, radius=2, seed=1
            ).labeling.total_size()
        if with_audit:
            audit = audit_labeling(inst, pll)
            charged = audit.charge_total
            triplets = audit.num_triplets
        else:
            charged = triplets = cert.triplet_count
        rows.append(
            LowerBoundRow(
                b=b,
                ell=ell,
                num_vertices=inst.graph.num_vertices,
                certificate_total=cert.hub_sum_lower_bound,
                measured_pll_total=pll.total_size(),
                measured_sparse_total=sparse_total,
                triplets=triplets,
                triplets_charged=charged,
                asymptotic_curve=theorem_11_average_hub_lower_bound(
                    inst.graph.num_vertices
                ),
            )
        )
    return rows


@dataclass
class PreviewRow:
    b: int
    ell: int
    num_vertices: int
    certified_average: float
    curve_average: float


def run_certificate_preview(parameters: List) -> List[PreviewRow]:
    """Certificates for instances far beyond building reach (E4 tail).

    Uses the closed-form sizing (:mod:`repro.lowerbound.sizing`), so
    arbitrarily large balanced parameters cost microseconds.
    """
    from ..lowerbound.sizing import certificate_preview

    rows = []
    for b, ell in parameters:
        cert = certificate_preview(b, ell)
        rows.append(
            PreviewRow(
                b=b,
                ell=ell,
                num_vertices=cert.num_vertices,
                certified_average=cert.average_lower_bound,
                curve_average=theorem_11_average_hub_lower_bound(
                    cert.num_vertices
                ),
            )
        )
    return rows


def preview_table(rows: List[PreviewRow]) -> Table:
    table = Table(
        "E4 tail: certificate scaling on the balanced diagonal "
        "(closed form, no graphs built)",
        ["b", "l", "n", "certified avg >=", "Thm1.1 curve avg"],
    )
    for r in rows:
        table.add_row(
            r.b,
            r.ell,
            r.num_vertices,
            r.certified_average,
            r.curve_average,
        )
    return table


def lower_bound_table(rows: List[LowerBoundRow]) -> Table:
    table = Table(
        "E4: Theorem 2.1(iii)/1.1 -- certified lower bound vs measured",
        [
            "b",
            "l",
            "n",
            "cert sum|S|>=",
            "PLL sum|S|",
            "sparse sum|S|",
            "triplets charged",
            "Thm1.1 curve (avg)",
        ],
    )
    for r in rows:
        table.add_row(
            r.b,
            r.ell,
            r.num_vertices,
            r.certificate_total,
            r.measured_pll_total,
            r.measured_sparse_total if r.measured_sparse_total is not None else "-",
            f"{r.triplets_charged}/{r.triplets}",
            r.asymptotic_curve,
        )
    return table
