"""The shift function and its relation to Sum-Index (Section 1.2).

Sum-Index was first isolated [Pud94] as a single-output-bit "extract" of
the cyclic shift function ``shift_k(x) = y`` with
``y_i = x_{(i+k) mod n}``: proving super-linear circuit lower bounds for
``shift`` was a candidate program, and the sublinear Sum-Index
protocols of Pudlak and Ambainis killed it.

This module makes the textbook connection executable:

* :func:`cyclic_shift` -- the function itself;
* :func:`shift_output_bit_as_sumindex` -- output bit ``i`` of
  ``shift_k(S)`` *is* the Sum-Index answer for indices ``(i, k)``;
* :func:`protocol_for_shift_bit` -- consequently, any Sum-Index
  protocol (e.g. the paper's graph-based one) evaluates any single
  output bit of shift in the simultaneous-messages model.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .problem import SumIndexInstance
from .protocols import run_protocol

__all__ = [
    "cyclic_shift",
    "shift_output_bit_as_sumindex",
    "protocol_for_shift_bit",
]


def cyclic_shift(bits: Sequence[int], k: int) -> Tuple[int, ...]:
    """``shift_k``: output ``y`` with ``y_i = x_{(i+k) mod n}``."""
    n = len(bits)
    if n == 0:
        return ()
    k %= n
    return tuple(bits[(i + k) % n] for i in range(n))


def shift_output_bit_as_sumindex(
    bits: Sequence[int], position: int, k: int
) -> SumIndexInstance:
    """The Sum-Index instance whose answer is bit ``position`` of
    ``shift_k(bits)``: Alice holds ``position``, Bob holds ``k``."""
    n = len(bits)
    return SumIndexInstance(
        bits=tuple(bits),
        alice_index=position % n,
        bob_index=k % n,
    )


def protocol_for_shift_bit(
    protocol, bits: Sequence[int], position: int, k: int
) -> Tuple[int, int, int]:
    """Evaluate bit ``position`` of ``shift_k(bits)`` through any
    Sum-Index protocol.  Returns ``(bit, alice_bits, bob_bits)``."""
    instance = shift_output_bit_as_sumindex(bits, position, k)
    return run_protocol(protocol, instance)
