"""Sum-Index (Section 3): the problem, the graph reduction, protocols.

* :mod:`.problem` -- instances and the base-(s/2) vector encoding;
* :mod:`.reduction` -- ``G'_{b,l}`` with the ``W`` predicate and the
  Observation 3.1 decoder;
* :mod:`.protocols` -- the Theorem 1.6 simultaneous-message protocol on
  top of any distance labeling, plus the trivial baseline.
"""

from .problem import (
    SumIndexInstance,
    index_to_vector,
    random_bitstring,
    vector_to_index,
)
from .reduction import (
    SumIndexGraph,
    build_sumindex_graph,
    decode_membership,
)
from .protocols import (
    GraphLabelingProtocol,
    Message,
    TrivialProtocol,
    row_label_decoder,
    run_protocol,
)
from .shift import (
    cyclic_shift,
    protocol_for_shift_bit,
    shift_output_bit_as_sumindex,
)
from .bruteforce import exact_total_bits, protocol_exists

__all__ = [
    "SumIndexInstance",
    "index_to_vector",
    "random_bitstring",
    "vector_to_index",
    "SumIndexGraph",
    "build_sumindex_graph",
    "decode_membership",
    "GraphLabelingProtocol",
    "Message",
    "TrivialProtocol",
    "row_label_decoder",
    "run_protocol",
    "cyclic_shift",
    "protocol_for_shift_bit",
    "shift_output_bit_as_sumindex",
    "exact_total_bits",
    "protocol_exists",
]
