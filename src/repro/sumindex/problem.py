"""The Sum-Index problem (Definition 1.5) and its vector encoding.

Alice holds the shared bit string ``S`` of length ``m`` and an index
``a``; Bob holds ``S`` and ``b``; each sends one simultaneous message to
a referee who must output ``S[(a + b) mod m]``.

The reduction of Theorem 1.6 encodes indices as vectors: with grid side
``s = 2^b`` and dimension ``l``, set ``m = (s/2)^l`` and let
``repr(x) = (sum_k x_k (s/2)^k) mod m`` -- base-``s/2`` digits.  Then

* ``repr`` restricted to ``[0, s/2 - 1]^l`` is a bijection onto
  ``[0, m - 1]`` (plain positional notation);
* ``repr`` is linear mod ``m``: ``repr(x + z) = (repr(x) + repr(z)) mod m``
  for *any* vectors (the identity the referee relies on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "SumIndexInstance",
    "vector_to_index",
    "index_to_vector",
    "random_bitstring",
]


def vector_to_index(vector: Sequence[int], half_side: int) -> int:
    """``repr(x) = (sum x_k (s/2)^k) mod (s/2)^l``."""
    if half_side < 1:
        raise ValueError("half_side must be >= 1")
    modulus = half_side ** len(vector)
    value = 0
    power = 1
    for digit in vector:
        value += digit * power
        power *= half_side
    return value % modulus if modulus else 0


def index_to_vector(index: int, half_side: int, dimension: int) -> Tuple[int, ...]:
    """The unique ``x in [0, s/2 - 1]^l`` with ``repr(x) = index``."""
    modulus = half_side ** dimension
    if not 0 <= index < modulus:
        raise ValueError(f"index {index} out of range [0, {modulus})")
    digits = []
    for _ in range(dimension):
        digits.append(index % half_side)
        index //= half_side
    return tuple(digits)


def random_bitstring(length: int, seed: int = 0) -> Tuple[int, ...]:
    rng = random.Random(seed)
    return tuple(rng.randrange(2) for _ in range(length))


@dataclass(frozen=True)
class SumIndexInstance:
    """One Sum-Index input: the shared string and the two indices."""

    bits: Tuple[int, ...]
    alice_index: int
    bob_index: int

    def __post_init__(self) -> None:
        m = len(self.bits)
        if m == 0:
            raise ValueError("the shared string must be non-empty")
        if any(bit not in (0, 1) for bit in self.bits):
            raise ValueError("S must be a 0/1 string")
        if not (0 <= self.alice_index < m and 0 <= self.bob_index < m):
            raise ValueError("indices must lie in [0, m)")

    @property
    def length(self) -> int:
        return len(self.bits)

    @property
    def answer(self) -> int:
        """The referee's target: ``S[(a + b) mod m]``."""
        return self.bits[(self.alice_index + self.bob_index) % len(self.bits)]
