"""The graph ``G'_{b,l}`` and Observation 3.1 (Section 3).

``G'_{b,l}`` is the hard instance ``G_{b,l}`` with part of its middle
layer deleted: the core vertex ``v_{l,y}`` survives iff the predicate
``W(y) = [S_repr(y) = 1]`` holds for the shared Sum-Index string ``S``.

Observation 3.1: for a Lemma 2.2 pair (all gaps even), the distance
between ``v_{0,x}`` and ``v_{2l,z}`` in ``G'`` reveals ``W((x+z)/2)``:

* if the midpoint core survives, the unique shortest path of ``G`` is
  intact and the distance equals the closed form
  ``2 l A + sum (z_k - x_k)^2 / 2``;
* if it was deleted, every remaining route either crosses the middle
  layer at a different vertex (strictly costlier -- the even split is
  the unique minimum of the convex cost) or backtracks (costlier still),
  so the distance strictly exceeds the closed form (possibly infinite
  when the whole layer is gone).

The decoder therefore needs only ``x``, ``z``, and the distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..graphs.graph import Graph
from ..graphs.traversal import bidirectional_distance
from ..lowerbound.degree3 import Degree3Instance, build_degree3_instance
from ..lowerbound.layered import Vector
from .problem import vector_to_index

__all__ = ["SumIndexGraph", "build_sumindex_graph", "decode_membership"]


@dataclass
class SumIndexGraph:
    """``G'_{b,l}`` plus the survived-vertex bookkeeping."""

    instance: Degree3Instance
    graph: Graph
    #: (level, vector) -> vertex id in the *pruned* graph.
    core_index: Dict[Tuple[int, Vector], int]
    bits: Tuple[int, ...]
    num_removed: int

    @property
    def b(self) -> int:
        return self.instance.b

    @property
    def ell(self) -> int:
        return self.instance.ell

    @property
    def half_side(self) -> int:
        return self.instance.side // 2

    @property
    def modulus(self) -> int:
        """``m = (s/2)^l`` -- the Sum-Index string length served."""
        return self.half_side ** self.ell

    def predicate(self, vector: Vector) -> bool:
        """``W(vector) = [S_repr(vector) = 1]``."""
        return self.bits[vector_to_index(vector, self.half_side) % self.modulus] == 1

    def core_vertex(self, level: int, vector: Vector) -> int:
        return self.core_index[(level, tuple(vector))]

    def endpoint_distance(self, x: Vector, z: Vector) -> float:
        """dist(v_{0,x}, v_{2l,z}) in the pruned graph."""
        return bidirectional_distance(
            self.graph,
            self.core_vertex(0, x),
            self.core_vertex(2 * self.ell, z),
        )

    def expected_distance(self, x: Vector, z: Vector) -> int:
        """The Lemma 2.2 closed form (distance iff the midpoint survives)."""
        return self.instance.layered.unique_path_length(x, z)


def build_sumindex_graph(
    b: int, ell: int, bits: Sequence[int]
) -> SumIndexGraph:
    """Prune ``G_{b,l}``'s middle layer according to ``S = bits``.

    ``bits`` must have length ``m = (s/2)^l``.  Every middle-layer vector
    ``y`` (the full ``[0, s-1]^l``, not only the bijective sub-box) is
    kept iff ``S[repr(y)] = 1`` -- each bit controls ``2^l`` vectors, as
    in the paper ("every value is in the image of 2^l vectors").
    """
    instance = build_degree3_instance(b, ell)
    half = instance.side // 2
    modulus = half ** ell
    bits = tuple(bits)
    if len(bits) != modulus:
        raise ValueError(
            f"need exactly m = (s/2)^l = {modulus} bits, got {len(bits)}"
        )
    if any(bit not in (0, 1) for bit in bits):
        raise ValueError("bits must be 0/1")
    layered = instance.layered
    removed = []
    for vector in layered.vectors():
        index = vector_to_index(vector, half) % modulus
        if bits[index] == 0:
            removed.append(instance.core_vertex(ell, vector))
    pruned, old_to_new = instance.graph.remove_vertices(removed)
    core_index: Dict[Tuple[int, Vector], int] = {}
    for level in range(layered.num_levels):
        for vector in layered.vectors():
            old = instance.core_vertex(level, vector)
            if old in old_to_new:
                core_index[(level, vector)] = old_to_new[old]
    return SumIndexGraph(
        instance=instance,
        graph=pruned,
        core_index=core_index,
        bits=bits,
        num_removed=len(removed),
    )


def decode_membership(
    expected_distance: float, measured_distance: float
) -> int:
    """Observation 3.1's decoder: the midpoint bit is 1 iff the measured
    distance equals the intact-path closed form."""
    return 1 if measured_distance == expected_distance else 0
