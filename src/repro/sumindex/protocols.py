"""Simultaneous-message protocols for Sum-Index.

Theorem 1.6 turns any exact distance labeling of sparse graphs into a
Sum-Index protocol: Alice and Bob (who both know ``S``) deterministically
build the same pruned graph ``G'_{b,l}`` and the same labeling of it,
then each sends the label of *their* endpoint vertex plus their index.
The referee -- who never sees ``S`` -- decodes the distance from the two
labels alone and compares it with the public closed form of Lemma 2.2
(Observation 3.1).  Consequently::

    bits per label  >=  SUMINDEX(m) - |index|

which is the paper's lower bound once the graph size is accounted for.

Baselines included for the message-size benchmarks:

* :class:`TrivialProtocol` -- Alice ships all of ``S`` (m + log m bits),
  the ceiling of the known envelope;
* the ``Omega(sqrt m)`` known lower bound is available as
  :func:`repro.core.bounds.sqrt_n_lower_bound_bits`.

No sublinear combinatorial protocol is implemented: Pudlak's and
Ambainis's "unexpected" upper bounds are separate papers (see DESIGN.md,
Substitutions); the graph route *is* this paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..labeling.bits import Bits
from ..labeling.scheme import DistanceLabelingScheme, DistanceRowScheme
from .problem import SumIndexInstance, index_to_vector
from .reduction import SumIndexGraph, build_sumindex_graph, decode_membership

__all__ = [
    "Message",
    "TrivialProtocol",
    "GraphLabelingProtocol",
    "run_protocol",
]

SchemeFactory = Callable[[Graph], DistanceLabelingScheme]
LabelDecoder = Callable[[Bits, Bits], float]


def row_label_decoder(label_a: Bits, label_b: Bits) -> float:
    """The S-independent decoder of :class:`DistanceRowScheme` labels."""
    return DistanceRowScheme.decode(None, label_a, label_b)


@dataclass(frozen=True)
class Message:
    """One simultaneous message: the sender's index plus a payload."""

    index: int
    payload: Bits
    index_bits: int

    @property
    def num_bits(self) -> int:
        return self.index_bits + len(self.payload)


def _index_width(m: int) -> int:
    return max(1, (max(m - 1, 1)).bit_length())


class TrivialProtocol:
    """Alice sends ``(a, S)``; the referee reads the answer directly."""

    name = "trivial"

    def __init__(self, length: int) -> None:
        self.length = length

    def alice_message(self, bits: Sequence[int], a: int) -> Message:
        return Message(
            index=a, payload=Bits(tuple(bits)), index_bits=_index_width(self.length)
        )

    def bob_message(self, bits: Sequence[int], b: int) -> Message:
        return Message(
            index=b, payload=Bits(()), index_bits=_index_width(self.length)
        )

    def referee(self, msg_a: Message, msg_b: Message) -> int:
        shared = msg_a.payload
        return shared[(msg_a.index + msg_b.index) % len(shared)]


class GraphLabelingProtocol:
    """The Theorem 1.6 protocol on ``G'_{b,l}`` with a pluggable labeling.

    ``scheme_factory`` maps the pruned graph to a deterministic distance
    labeling scheme (default: the lazily-computed
    :class:`DistanceRowScheme`; pass a hub-based factory for small
    instances).  Both parties must use the same factory -- determinism
    is what makes the simultaneous messages consistent.
    """

    name = "graph-labeling"

    def __init__(
        self,
        b: int,
        ell: int,
        *,
        scheme_factory: Optional[SchemeFactory] = None,
        decoder: Optional[LabelDecoder] = None,
    ) -> None:
        self.b = b
        self.ell = ell
        self.half_side = 2 ** (b - 1)
        self.length = self.half_side ** ell
        self._factory: SchemeFactory = scheme_factory or DistanceRowScheme
        self._decoder: LabelDecoder = decoder or row_label_decoder
        # Per-party caches keyed by the shared string (each party would
        # build its own copy; caching mirrors "both construct the same").
        self._cache: dict = {}

    # -- construction shared by both parties ---------------------------
    def _build(self, bits: Tuple[int, ...]) -> Tuple[SumIndexGraph, DistanceLabelingScheme]:
        cached = self._cache.get(bits)
        if cached is None:
            pruned = build_sumindex_graph(self.b, self.ell, bits)
            cached = (pruned, self._factory(pruned.graph))
            self._cache[bits] = cached
        return cached

    def _endpoint_vector(self, index: int) -> Tuple[int, ...]:
        doubled = tuple(
            2 * digit
            for digit in index_to_vector(index, self.half_side, self.ell)
        )
        return doubled

    def alice_message(self, bits: Sequence[int], a: int) -> Message:
        pruned, scheme = self._build(tuple(bits))
        vertex = pruned.core_vertex(0, self._endpoint_vector(a))
        return Message(
            index=a,
            payload=scheme.label(vertex),
            index_bits=_index_width(self.length),
        )

    def bob_message(self, bits: Sequence[int], b: int) -> Message:
        pruned, scheme = self._build(tuple(bits))
        vertex = pruned.core_vertex(
            2 * self.ell, self._endpoint_vector(b)
        )
        return Message(
            index=b,
            payload=scheme.label(vertex),
            index_bits=_index_width(self.length),
        )

    def referee(self, msg_a: Message, msg_b: Message) -> int:
        """Decode without any access to ``S`` or the pruned graph.

        Needs only the public protocol parameters (b, l, hence A and the
        Lemma 2.2 closed form) and the two messages.
        """
        x = self._endpoint_vector(msg_a.index)
        z = self._endpoint_vector(msg_b.index)
        base_weight = 3 * self.ell * (2 ** self.b) ** 2
        expected = 2 * self.ell * base_weight + sum(
            (zk - xk) ** 2 // 2 for xk, zk in zip(x, z)
        )
        # The decoder is part of the scheme specification (not of any
        # instance built from S); the default reads the labels alone.
        measured = self._decoder(msg_a.payload, msg_b.payload)
        return decode_membership(expected, measured)


def run_protocol(protocol, instance: SumIndexInstance) -> Tuple[int, int, int]:
    """Execute a protocol on one instance.

    Returns ``(referee_output, alice_bits, bob_bits)``; correctness means
    ``referee_output == instance.answer``.
    """
    msg_a = protocol.alice_message(instance.bits, instance.alice_index)
    msg_b = protocol.bob_message(instance.bits, instance.bob_index)
    output = protocol.referee(msg_a, msg_b)
    return output, msg_a.num_bits, msg_b.num_bits
