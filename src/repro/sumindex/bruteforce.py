"""Exact simultaneous-message complexity by brute force (tiny m).

The paper leans on ``SUMINDEX(n) = Omega(sqrt n)`` from the
communication-complexity literature.  For laptop-scale sanity we can
compute the *exact* complexity for the smallest instances by
enumerating every deterministic protocol: Alice's message is any
function of ``(S, a)``, Bob's of ``(S, b)``, and a referee function of
the two messages must output ``S[(a + b) mod m]`` for **all** inputs.

With message alphabets of ``2^c`` symbols the search space is
``2^(c * m * 2^m)`` per player, so only ``m <= 2`` is exhaustive; the
module exposes exactly that and refuses more.  (Result, verified by the
tests: ``SUMINDEX(2)`` needs 2 message bits in total -- one per player
is already enough, because both players know S.)
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Optional, Tuple

__all__ = ["protocol_exists", "exact_total_bits"]


def _all_inputs(m: int) -> Iterator[Tuple[Tuple[int, ...], int, int]]:
    for bits in product((0, 1), repeat=m):
        for a in range(m):
            for b in range(m):
                yield bits, a, b


def protocol_exists(m: int, alice_symbols: int, bob_symbols: int) -> bool:
    """Is there a deterministic SM protocol with the given alphabets?

    Exhaustive over all message functions and referee tables.  Capped at
    ``m <= 2`` (the search is doubly exponential).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if m > 2:
        raise ValueError("exhaustive search is capped at m <= 2")
    strings = list(product((0, 1), repeat=m))
    alice_domain = [(s, a) for s in strings for a in range(m)]
    bob_domain = [(s, b) for s in strings for b in range(m)]

    for alice_values in product(range(alice_symbols), repeat=len(alice_domain)):
        alice = dict(zip(alice_domain, alice_values))
        for bob_values in product(range(bob_symbols), repeat=len(bob_domain)):
            bob = dict(zip(bob_domain, bob_values))
            # The referee table is forced: every (msg_a, msg_b) cell must
            # be consistent across all inputs mapping to it.
            table: dict = {}
            consistent = True
            for bits, a, b in _all_inputs(m):
                key = (alice[(bits, a)], bob[(bits, b)])
                answer = bits[(a + b) % m]
                if table.setdefault(key, answer) != answer:
                    consistent = False
                    break
            if consistent:
                return True
    return False


def exact_total_bits(m: int, max_bits: int = 4) -> Optional[int]:
    """The minimum total message bits for SUMINDEX(m) (m <= 2).

    Searches symmetric and asymmetric splits up to ``max_bits`` total;
    returns None if nothing within the budget works.
    """
    for total in range(0, max_bits + 1):
        for alice_bits in range(0, total + 1):
            bob_bits = total - alice_bits
            if protocol_exists(m, 2 ** alice_bits, 2 ** bob_bits):
                return total
    return None
