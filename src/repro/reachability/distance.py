"""Directed 2-hop *distance* covers -- the other half of [CHKZ03].

Same shape as the reachability cover but with distances attached:
``dist(u, v) = min over h of d_out(u, h) + d_in(h, v)`` where
``d_out``/``d_in`` are stored with the hubs.  Construction mirrors
pruned landmark labeling with a forward and a backward pruned BFS per
root (unweighted arcs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .digraph import DiGraph

__all__ = [
    "DirectedHubLabeling",
    "pruned_directed_labeling",
    "is_valid_directed_cover",
]

INF = float("inf")


@dataclass
class DirectedHubLabeling:
    """Out/in hub maps with distances; asymmetric queries."""

    out_labels: List[Dict[int, int]] = field(default_factory=list)
    in_labels: List[Dict[int, int]] = field(default_factory=list)

    @classmethod
    def empty(cls, num_vertices: int) -> "DirectedHubLabeling":
        return cls(
            out_labels=[{} for _ in range(num_vertices)],
            in_labels=[{} for _ in range(num_vertices)],
        )

    @property
    def num_vertices(self) -> int:
        return len(self.out_labels)

    def query(self, u: int, v: int) -> float:
        """The directed distance ``u -> v`` from labels alone."""
        a = self.out_labels[u]
        b = self.in_labels[v]
        if len(a) > len(b):
            best = INF
            for h, db in b.items():
                da = a.get(h)
                if da is not None and da + db < best:
                    best = da + db
            return best
        best = INF
        for h, da in a.items():
            db = b.get(h)
            if db is not None and da + db < best:
                best = da + db
        return best

    def total_size(self) -> int:
        return sum(len(s) for s in self.out_labels) + sum(
            len(s) for s in self.in_labels
        )


def pruned_directed_labeling(
    graph: DiGraph, order: Optional[List[int]] = None
) -> DirectedHubLabeling:
    """Canonical directed PLL (forward + backward pruned BFS per root)."""
    n = graph.num_vertices
    if order is None:
        order = sorted(
            graph.vertices(),
            key=lambda v: -(
                len(graph.successors(v)) + len(graph.predecessors(v))
            ),
        )
    if sorted(order) != list(graph.vertices()):
        raise ValueError("order must be a permutation of the vertices")
    labeling = DirectedHubLabeling.empty(n)
    for root in order:
        _pruned_bfs(graph, root, labeling, forward=True)
        _pruned_bfs(graph, root, labeling, forward=False)
    return labeling


def _pruned_bfs(
    graph: DiGraph,
    root: int,
    labeling: DirectedHubLabeling,
    *,
    forward: bool,
) -> None:
    adjacency = graph.successors if forward else graph.predecessors
    # Forward sweep covers pairs (root -> u): compare against
    # L_out(root) merged with L_in(u).
    root_label = (
        labeling.out_labels[root] if forward else labeling.in_labels[root]
    )
    dist = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        d = dist[u]
        target_label = (
            labeling.in_labels[u] if forward else labeling.out_labels[u]
        )
        covered = False
        for h, dr in root_label.items():
            du = target_label.get(h)
            if du is not None and dr + du <= d:
                covered = True
                break
        if covered:
            continue
        if forward:
            labeling.in_labels[u][root] = d
        else:
            labeling.out_labels[u][root] = d
        for v in adjacency(u):
            if v not in dist:
                dist[v] = d + 1
                queue.append(v)


def is_valid_directed_cover(
    graph: DiGraph, labeling: DirectedHubLabeling
) -> bool:
    """Exhaustive check against per-source BFS distances."""
    if labeling.num_vertices != graph.num_vertices:
        return False
    for u in graph.vertices():
        dist = {u: 0}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            for y in graph.successors(x):
                if y not in dist:
                    dist[y] = dist[x] + 1
                    queue.append(y)
        for v in graph.vertices():
            expected = dist.get(v, INF)
            if labeling.query(u, v) != expected:
                return False
    return True
