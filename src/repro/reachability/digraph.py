"""Directed graphs (for the 2-hop *reachability* covers of [CHKZ03]).

The hub-labeling framework the paper builds on was introduced by Cohen,
Halperin, Kaplan, Zwick for *directed reachability and distance*
queries; this subpackage reproduces the reachability half on a minimal
directed substrate:

* :class:`DiGraph` -- out/in adjacency lists, unweighted;
* forward/backward BFS, reachable sets, brute-force closure;
* DAG detection and topological order (Kahn).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

__all__ = ["DiGraph"]


class DiGraph:
    """A simple directed graph on vertices ``0 .. n-1``."""

    __slots__ = ("_out", "_in", "_num_edges")

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        self._out.append([])
        self._in.append([])
        return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the arc ``u -> v`` (parallel arcs collapse, loops rejected)."""
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v in self._out[u]:
            return
        self._out[u].append(v)
        self._in[v].append(u)
        self._num_edges += 1

    def _check(self, v: int) -> None:
        if not 0 <= v < len(self._out):
            raise IndexError(f"vertex {v} out of range")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._out))

    def successors(self, v: int) -> List[int]:
        self._check(v)
        return self._out[v]

    def predecessors(self, v: int) -> List[int]:
        self._check(v)
        return self._in[v]

    def edges(self):
        for u, row in enumerate(self._out):
            for v in row:
                yield (u, v)

    # ------------------------------------------------------------------
    def reachable_from(self, source: int) -> Set[int]:
        """All vertices reachable from ``source`` (including itself)."""
        return self._bfs(source, self._out)

    def reaching_to(self, target: int) -> Set[int]:
        """All vertices that can reach ``target`` (including itself)."""
        return self._bfs(target, self._in)

    def _bfs(self, start: int, adjacency: List[List[int]]) -> Set[int]:
        self._check(start)
        seen = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def reaches(self, u: int, v: int) -> bool:
        """Brute-force reachability (BFS per query; the test oracle)."""
        return v in self.reachable_from(u)

    # ------------------------------------------------------------------
    def topological_order(self) -> Optional[List[int]]:
        """A topological order, or None if the graph has a cycle (Kahn)."""
        indegree = [len(self._in[v]) for v in self.vertices()]
        queue = deque(v for v in self.vertices() if indegree[v] == 0)
        order: List[int] = []
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in self._out[u]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
        if len(order) != self.num_vertices:
            return None
        return order

    def is_dag(self) -> bool:
        return self.topological_order() is not None

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_vertices}, m={self.num_edges})"
