"""2-hop reachability covers ([CHKZ03], the framework's original form).

A 2-hop reachability labeling assigns every vertex two hub sets,
``L_out(v)`` and ``L_in(v)``, such that::

    u reaches v   iff   L_out(u) ∩ L_in(v) != {}

with the convention ``v ∈ L_out(v) ∩ L_in(v)`` (so ``u = v`` and direct
containments work out).  This is exactly the asymmetric ancestor of the
paper's (undirected, distance-annotated) hub labeling.

Construction: the pruned double-BFS of Yano et al. -- process vertices
in priority order; for each root run a *forward* BFS adding the root to
``L_in`` of every vertex whose reachability from the root is not yet
certified, and a *backward* BFS adding it to ``L_out`` symmetrically.
Pruning keeps the labeling canonical for the order, mirroring PLL.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Set

from .digraph import DiGraph

__all__ = [
    "ReachabilityLabeling",
    "pruned_reachability_labeling",
    "is_valid_reachability_cover",
]


@dataclass
class ReachabilityLabeling:
    """The two hub-set families, with set-intersection queries."""

    out_labels: List[Set[int]] = field(default_factory=list)
    in_labels: List[Set[int]] = field(default_factory=list)

    @classmethod
    def empty(cls, num_vertices: int) -> "ReachabilityLabeling":
        return cls(
            out_labels=[set() for _ in range(num_vertices)],
            in_labels=[set() for _ in range(num_vertices)],
        )

    @property
    def num_vertices(self) -> int:
        return len(self.out_labels)

    def query(self, u: int, v: int) -> bool:
        """``u`` reaches ``v``?  Pure label intersection."""
        a = self.out_labels[u]
        b = self.in_labels[v]
        if len(a) > len(b):
            return not b.isdisjoint(a)
        return not a.isdisjoint(b)

    def total_size(self) -> int:
        return sum(len(s) for s in self.out_labels) + sum(
            len(s) for s in self.in_labels
        )

    def average_size(self) -> float:
        if not self.out_labels:
            return 0.0
        return self.total_size() / len(self.out_labels)


def pruned_reachability_labeling(
    graph: DiGraph, order: Optional[List[int]] = None
) -> ReachabilityLabeling:
    """The canonical pruned 2-hop reachability cover for ``order``.

    Defaults to decreasing total degree.  Every vertex ends up in both
    of its own labels.
    """
    n = graph.num_vertices
    if order is None:
        order = sorted(
            graph.vertices(),
            key=lambda v: -(len(graph.successors(v)) + len(graph.predecessors(v))),
        )
    if sorted(order) != list(graph.vertices()):
        raise ValueError("order must be a permutation of the vertices")
    labeling = ReachabilityLabeling.empty(n)
    for root in order:
        # Forward sweep: root joins L_in of everything it reaches and
        # whose pair (root, u) is not already covered.
        _sweep(graph, root, labeling, forward=True)
        # Backward sweep: root joins L_out of everything reaching it.
        _sweep(graph, root, labeling, forward=False)
    return labeling


def _sweep(
    graph: DiGraph,
    root: int,
    labeling: ReachabilityLabeling,
    *,
    forward: bool,
) -> None:
    adjacency = graph.successors if forward else graph.predecessors
    root_label = (
        labeling.out_labels[root] if forward else labeling.in_labels[root]
    )
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        # Pruning: is (root ~> u) -- resp. (u ~> root) -- certified?
        target_label = (
            labeling.in_labels[u] if forward else labeling.out_labels[u]
        )
        if u != root and not root_label.isdisjoint(target_label):
            continue
        if forward:
            labeling.in_labels[u].add(root)
        else:
            labeling.out_labels[u].add(root)
        for v in adjacency(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)


def is_valid_reachability_cover(
    graph: DiGraph, labeling: ReachabilityLabeling
) -> bool:
    """Exhaustive check against per-source BFS closures."""
    if labeling.num_vertices != graph.num_vertices:
        return False
    for u in graph.vertices():
        reachable = graph.reachable_from(u)
        for v in graph.vertices():
            if labeling.query(u, v) != (v in reachable):
                return False
    return True
