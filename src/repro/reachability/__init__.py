"""Directed 2-hop reachability covers -- the original [CHKZ03] setting.

The paper's hub labelings are the undirected, distance-annotated
descendants of these: ``u`` reaches ``v`` iff
``L_out(u) ∩ L_in(v) != {}``.
"""

from .digraph import DiGraph
from .distance import (
    DirectedHubLabeling,
    is_valid_directed_cover,
    pruned_directed_labeling,
)
from .two_hop import (
    ReachabilityLabeling,
    is_valid_reachability_cover,
    pruned_reachability_labeling,
)

__all__ = [
    "DiGraph",
    "DirectedHubLabeling",
    "is_valid_directed_cover",
    "pruned_directed_labeling",
    "ReachabilityLabeling",
    "is_valid_reachability_cover",
    "pruned_reachability_labeling",
]
