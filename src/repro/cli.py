"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``experiments`` -- run every experiment runner and print its table
  (``--only E1,E4`` to filter; ``--fast`` to skip the heavy ones);
* ``label``       -- build a hub labeling for a graph given as an
  edge-list file (or a named generator) and report sizes / save it;
* ``build``       -- run the fast flat-label builder
  (:func:`repro.perf.build.build_flat_labels`) and report throughput;
  with ``--cache-dir DIR`` the result is persisted and later runs are
  served from the cache (the line ``cache: hit|miss|off`` says which);
* ``query``       -- load a saved labeling and answer distance queries,
  optionally through the resilient runtime (``--graph`` +
  ``--fallback`` / ``--verify-sample``);
* ``instance``    -- build a hard instance ``G_{b,l}`` and print its
  anatomy and certificate;
* ``chaos``       -- run the seeded fault-injection sweep and report
  how every fault was detected or degraded;
* ``bench``       -- run the pinned performance suites (construction,
  flat vs dict batch throughput, label memory, traversal fan-out,
  instrumentation overhead) and write machine-readable
  ``BENCH_perf.json``;
* ``serve``       -- self-test the concurrent serving layer: stand up
  a :class:`~repro.serve.server.QueryServer` over the flat oracle (or
  the resilient runtime with ``--resilient``), fire a threaded
  workload at it, and grade **every** answer against the dict-backend
  ground truth; exits non-zero on any wrong, dropped, or errored
  request;
* ``loadgen``     -- throughput-focused load generation against the
  same serving stack (``--clients`` / ``--requests`` / ``--duration``
  knobs; ``--validate`` opts into grading);
* ``stats``       -- run an instrumented query workload (or load a
  snapshot written by ``--metrics-out``) and print the metrics
  registry as a table, JSON, or Prometheus text exposition.

The ``query``, ``chaos``, ``bench``, ``serve``, and ``loadgen``
commands accept ``--metrics-out FILE`` to dump the final registry
snapshot as JSON -- the file ``stats`` can read back.

Examples::

    python -m repro.cli experiments --only E1,E8
    python -m repro.cli label --generator sparse:200 --method pll --save labels.bin
    python -m repro.cli build --generator sparse:200 --cache-dir .labelcache
    python -m repro.cli query 0 42 --generator sparse:200 --cache-dir .labelcache
    python -m repro.cli query labels.bin 0 42 7 199
    python -m repro.cli query labels.bin 0 42 --graph g.txt --verify-sample 8
    python -m repro.cli instance --b 2 --l 1
    python -m repro.cli chaos --generator sparse:30 --trials 25
    python -m repro.cli serve --generator sparse:200 --clients 8
    python -m repro.cli loadgen --generator sparse:500 --duration 2
    python -m repro.cli bench --quick --out BENCH_perf.json
    python -m repro.cli stats --generator sparse:100 --pairs 10000 --json
    python -m repro.cli stats snapshot.json --prom

User errors never print tracebacks: every
:class:`~repro.runtime.errors.ReproError` is reported as a one-line
diagnostic on stderr and mapped to that error class's distinct exit
code (64-69; missing files exit 74).
"""

import argparse
import json
import os
import random
import sys
from typing import List, Optional

from .core import (
    greedy_hub_labeling,
    is_valid_cover,
    labeling_from_bytes,
    labeling_to_bytes,
    pruned_landmark_labeling,
    rs_hub_labeling,
    sparse_hub_labeling,
    graph_from_edgelist,
)
from .graphs import (
    Graph,
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    powerlaw_configuration,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_tree,
    road_network,
    watts_strogatz,
)
from .runtime import FAULT_KINDS, DomainError, ReproError, ResilientOracle, chaos_sweep

__all__ = ["main"]


def _load_graph(args) -> Graph:
    if args.generator:
        kind, _, size = args.generator.partition(":")
        n = int(size or 100)
        if kind == "sparse":
            return random_sparse_graph(n, seed=args.seed)
        if kind == "tree":
            return random_tree(n, seed=args.seed)
        if kind == "grid":
            side = max(2, int(round(n ** 0.5)))
            return grid_2d(side, side)
        if kind == "degree3":
            return random_bounded_degree_graph(n, 3, seed=args.seed)
        if kind == "ba":
            return barabasi_albert(n, 2, seed=args.seed)
        if kind == "powerlaw":
            return powerlaw_configuration(n, seed=args.seed)
        if kind == "smallworld":
            return watts_strogatz(n, 4, 0.1, seed=args.seed)
        if kind == "road":
            side = max(2, int(round(n ** 0.5)))
            return road_network(side, side, seed=args.seed)
        if kind == "erdos":
            # Sparse regime G(n, c/n) with expected degree c = 3.
            return erdos_renyi(n, min(1.0, 3.0 / n), seed=args.seed)
        raise SystemExit(f"unknown generator {kind!r}")
    if args.graph:
        with open(args.graph) as handle:
            return graph_from_edgelist(handle.read())
    raise SystemExit("provide --graph FILE or --generator KIND:N")


def _build_labeling(graph: Graph, method: str, seed: int):
    if method == "pll":
        return pruned_landmark_labeling(graph)
    if method == "greedy":
        return greedy_hub_labeling(graph)
    if method == "sparse":
        return sparse_hub_labeling(graph, seed=seed).labeling
    if method == "rs":
        return rs_hub_labeling(graph, seed=seed).labeling
    raise SystemExit(f"unknown method {method!r}")


def _maybe_write_metrics(args) -> None:
    """Honor ``--metrics-out FILE`` on the commands that offer it."""
    path = getattr(args, "metrics_out", None)
    if path:
        from .obs.export import write_snapshot
        from .obs.registry import get_registry

        write_snapshot(get_registry(), path)
        print(f"wrote metrics snapshot to {path}")


def _cmd_label(args) -> int:
    graph = _load_graph(args)
    labeling = _build_labeling(graph, args.method, args.seed)
    print(f"graph:    {graph}")
    print(f"labeling: {labeling}")
    if args.verify:
        ok = is_valid_cover(graph, labeling)
        print(f"valid 2-hop cover: {ok}")
        if not ok:
            return 1
    if args.save:
        blob = labeling_to_bytes(labeling)
        with open(args.save, "wb") as handle:
            handle.write(blob)
        print(f"saved {len(blob)} bytes to {args.save}")
    return 0


def _cmd_query(args) -> int:
    vertices = list(args.vertices)
    cached_flat = None
    if args.cache_dir:
        if not (args.graph or args.generator):
            raise SystemExit(
                "--cache-dir needs the graph: add --graph FILE or "
                "--generator KIND:N"
            )
        if args.labeling is not None:
            # The labeling comes from the cache, so every positional
            # argument is a query vertex.
            try:
                vertices.insert(0, int(args.labeling))
            except ValueError:
                raise SystemExit(
                    "--cache-dir builds the labeling from the graph; "
                    f"drop the labeling file argument {args.labeling!r}"
                )
        from .perf.cache import LabelCache

        graph = _load_graph(args)
        cached_flat = LabelCache(args.cache_dir).load_or_build(graph)
        labeling = cached_flat
    else:
        if args.labeling is None:
            raise SystemExit(
                "provide a labeling file (or --cache-dir DIR with a "
                "graph source)"
            )
        with open(args.labeling, "rb") as handle:
            labeling = labeling_from_bytes(handle.read())
    if not vertices:
        raise SystemExit("provide query vertices: u1 v1 u2 v2 ...")
    if len(vertices) % 2:
        raise SystemExit("provide an even number of vertices (pairs)")
    pairs = list(zip(vertices[::2], vertices[1::2]))
    if cached_flat is not None:
        wants_runtime = bool(args.fallback) or bool(args.verify_sample)
        if not wants_runtime:
            # Serve straight from the flat store: a warm cache run does
            # no construction at all (no build.flat span is emitted).
            from .oracles.oracle import HubLabelOracle

            oracle = HubLabelOracle(cached_flat, backend="flat")
            for u, v in pairs:
                for vertex in (u, v):
                    if not 0 <= vertex < cached_flat.num_vertices:
                        raise DomainError(
                            f"vertex {vertex} outside "
                            f"0..{cached_flat.num_vertices - 1}"
                        )
                print(f"dist({u}, {v}) = {oracle.query(u, v).distance}")
            _maybe_write_metrics(args)
            return 0
        # The resilient runtime consumes the dict store.
        labeling = cached_flat.to_labeling()
    has_graph = bool(args.graph or args.generator)
    if not has_graph:
        if args.fallback:
            raise SystemExit(
                "--fallback needs the graph: add --graph FILE or "
                "--generator KIND:N"
            )
        if args.verify_sample:
            raise SystemExit(
                "--verify-sample needs the graph: add --graph FILE or "
                "--generator KIND:N"
            )
        from .oracles.oracle import HubLabelOracle

        # Serve through the instrumented oracle (not labeling.query
        # directly) so --metrics-out captures the served queries.
        oracle = HubLabelOracle(labeling)
        for u, v in pairs:
            for vertex in (u, v):
                if not 0 <= vertex < labeling.num_vertices:
                    raise DomainError(
                        f"vertex {vertex} outside "
                        f"0..{labeling.num_vertices - 1}"
                    )
            print(f"dist({u}, {v}) = {oracle.query(u, v).distance}")
        _maybe_write_metrics(args)
        return 0
    graph = _load_graph(args)
    fallback = True if args.fallback is None else args.fallback
    oracle = ResilientOracle(
        graph,
        labeling,
        fallback=fallback,
        verify_sample=args.verify_sample,
        seed=args.seed,
    )
    for u, v in pairs:
        outcome = oracle.query(u, v)
        marker = "  [exact fallback]" if outcome.source == "fallback" else ""
        print(f"dist({u}, {v}) = {outcome.distance}{marker}")
    if not oracle.health.healthy:
        print(f"health: {oracle.health!r}", file=sys.stderr)
    _maybe_write_metrics(args)
    return 0


def _cmd_build(args) -> int:
    import time

    from .core.orders import degree_order
    from .perf.build import build_flat_labels

    graph = _load_graph(args)
    order = degree_order(graph)
    start = time.perf_counter()
    if args.cache_dir:
        from .perf.cache import LabelCache, cache_key

        cache = LabelCache(args.cache_dir)
        flat = cache.load(graph, order)
        if flat is None:
            status = "miss"
            flat = build_flat_labels(graph, order)
            artifact = cache.store(graph, order, flat)
        else:
            status = "hit"
            artifact = cache.path_for(cache_key(graph, order))
    else:
        status = "off"
        artifact = None
        flat = build_flat_labels(graph, order)
    elapsed = time.perf_counter() - start
    print(f"graph:    {graph}")
    print(f"labeling: {flat}")
    print(
        f"built {flat.total_size()} label entries in {elapsed:.3f}s "
        f"({flat.total_size() / elapsed:,.0f} entries/s)"
        if elapsed > 0
        else f"built {flat.total_size()} label entries"
    )
    print(f"cache: {status}")
    if artifact is not None:
        print(f"artifact: {artifact}")
    if args.save:
        from .core.io import flat_labeling_to_bytes

        blob = flat_labeling_to_bytes(flat)
        with open(args.save, "wb") as handle:
            handle.write(blob)
        print(f"saved {len(blob)} bytes to {args.save}")
    _maybe_write_metrics(args)
    return 0


def _cmd_chaos(args) -> int:
    graph = _load_graph(args)
    if args.cache_dir:
        if args.method != "pll":
            raise SystemExit(
                "--cache-dir caches the canonical PLL labeling; "
                f"it cannot serve --method {args.method}"
            )
        from .perf.cache import LabelCache

        labeling = LabelCache(args.cache_dir).load_or_build(
            graph
        ).to_labeling()
    else:
        labeling = _build_labeling(graph, args.method, args.seed)
    kinds = args.faults.split(",") if args.faults else list(FAULT_KINDS)
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise SystemExit(
                f"unknown fault kind {kind!r}; pick from "
                f"{','.join(FAULT_KINDS)}"
            )
    report = chaos_sweep(
        graph,
        labeling,
        kinds=kinds,
        trials_per_kind=args.trials,
        queries_per_trial=args.queries,
        seed=args.seed,
    )
    print(report.render())
    _maybe_write_metrics(args)
    return 0 if report.ok else 1


def _serve_labels(args):
    """The (graph, flat labeling) pair the serving commands run over.

    ``--cache-dir`` reuses (or seeds) the persistent label cache, so a
    warm run skips construction entirely -- the same contract as the
    ``build`` and ``query`` commands.
    """
    from .core.orders import degree_order
    from .perf.build import build_flat_labels

    graph = _load_graph(args)
    if args.cache_dir:
        from .perf.cache import LabelCache

        flat = LabelCache(args.cache_dir).load_or_build(graph)
    else:
        flat = build_flat_labels(graph, degree_order(graph))
    return graph, flat


def _make_server(args, graph, flat):
    from .oracles.oracle import HubLabelOracle
    from .serve import QueryServer

    processes = getattr(args, "processes", 0) or 0
    if processes > 0:
        if getattr(args, "resilient", False):
            raise SystemExit(
                "--processes serves the immutable flat store across "
                "worker processes; it cannot host the stateful "
                "--resilient runtime"
            )
        from .serve import ShardedQueryServer

        return ShardedQueryServer(
            HubLabelOracle(flat, backend="flat"),
            processes=processes,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            cache_size=args.cache_size,
        )
    if getattr(args, "resilient", False):
        oracle = ResilientOracle(
            graph,
            flat.to_labeling(),
            fallback=True,
            verify_sample=getattr(args, "verify_sample", 0),
            seed=args.seed,
        )
    else:
        oracle = HubLabelOracle(flat, backend="flat")
    return QueryServer(
        oracle,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        cache_size=args.cache_size,
        shards=getattr(args, "shards", None),
        dispatchers=getattr(args, "dispatchers", 1) or 1,
    )


def _print_server_summary(server, report) -> None:
    stats = server.stats()
    print(report.render())
    print(
        f"batches:    {stats.batches} "
        f"(mean width {stats.mean_batch_width:.1f}, "
        f"p50 {stats.batch_width_p50:.0f}, p95 {stats.batch_width_p95:.0f})"
    )
    print(f"cache hits: {stats.cache_hits}")
    print(f"overloads:  {stats.overloads}")


def _cmd_serve(args) -> int:
    """Self-test mode: every served answer graded against ground truth."""
    from .oracles.oracle import HubLabelOracle
    from .serve import run_loadgen

    graph, flat = _serve_labels(args)
    ground = HubLabelOracle(flat.to_labeling(), backend="dict")
    server = _make_server(args, graph, flat)
    print(f"graph:    {graph}")
    print(f"labeling: {flat}")
    fanout = (
        f"processes={server.processes}"
        if hasattr(server, "processes")
        else f"shards={server.shards}x{server.dispatchers}"
    )
    print(
        f"server:   {type(server.oracle).__name__}, "
        f"queue<={args.max_queue}, batch<={args.max_batch}, "
        f"delay<={args.max_delay * 1e3:g}ms, cache={args.cache_size}, "
        f"{fanout}"
    )
    with server:
        report = run_loadgen(
            server,
            graph.num_vertices,
            clients=args.clients,
            requests_per_client=args.requests,
            duration=args.duration,
            seed=args.seed,
            expected=lambda u, v: ground.query(u, v).distance,
            batch_size=args.batch or None,
            distribution=args.distribution,
            zipf_s=args.zipf_s,
            hot_pairs=args.hot_pairs,
            hot_fraction=args.hot_fraction,
        )
    _print_server_summary(server, report)
    _maybe_write_metrics(args)
    return 0 if report.ok else 1


def _make_churn(server, graph, *, mutations, seed):
    """A one-mutation-per-call closure for ``run_loadgen(churn=...)``.

    Each call applies the next edit of a seeded kept-connected
    :class:`MutationScript` through incremental repair, hot-swaps the
    repaired labeling into ``server`` via ``set_oracle``, then grades a
    handful of post-swap probes against the repaired labeling -- the
    generation-keyed result cache means a probe submitted after the
    swap can never see the old oracle, so a probe mismatch is a stale
    or wrong answer and fails the run loudly.
    """
    import random as random_module

    from .dynamic import DynamicHubLabeling, mutation_script
    from .oracles.oracle import HubLabelOracle
    from .runtime.errors import ServerOverloadError

    script = list(
        mutation_script(graph, mutations, seed=seed, keep_connected=True)
    )
    dyn = DynamicHubLabeling(graph)
    probe_rng = random_module.Random(seed ^ 0x5EED)
    n = graph.num_vertices
    cursor = iter(script)

    def churn():
        try:
            op, u, v, w = next(cursor)
        except StopIteration:
            return False
        if op == "insert":
            dyn.insert_edge(u, v, w)
        else:
            dyn.delete_edge(u, v)
        server.set_oracle(HubLabelOracle(dyn.flat(), backend="flat"))
        for _ in range(8):
            a, b = probe_rng.randrange(n), probe_rng.randrange(n)
            try:
                got = server.query(a, b)
            except ServerOverloadError:
                continue  # saturated; the next probe retries admission
            want = dyn.query(a, b)
            if got != want or type(got) is not type(want):
                raise RuntimeError(
                    f"stale or wrong answer after hot swap "
                    f"{dyn.mutations}: dist({a},{b}) = {got!r}, "
                    f"want {want!r}"
                )
        return True

    return churn


def _cmd_loadgen(args) -> int:
    """Throughput mode: grading is opt-in (``--validate``)."""
    from .oracles.oracle import HubLabelOracle
    from .serve import run_loadgen

    if args.churn and args.validate:
        raise SystemExit(
            "--validate grades against the initial labeling, which "
            "--churn mutates away; churn runs grade their own "
            "post-swap probes instead"
        )
    graph, flat = _serve_labels(args)
    expected = None
    if args.validate:
        ground = HubLabelOracle(flat.to_labeling(), backend="dict")
        expected = lambda u, v: ground.query(u, v).distance  # noqa: E731
    server = _make_server(args, graph, flat)
    print(f"graph:    {graph}")
    churn = None
    if args.churn:
        churn = _make_churn(
            server, graph, mutations=args.churn, seed=args.seed
        )
    with server:
        report = run_loadgen(
            server,
            graph.num_vertices,
            clients=args.clients,
            requests_per_client=args.requests,
            duration=args.duration,
            seed=args.seed,
            expected=expected,
            batch_size=args.batch or None,
            distribution=args.distribution,
            zipf_s=args.zipf_s,
            hot_pairs=args.hot_pairs,
            hot_fraction=args.hot_fraction,
            churn=churn,
            churn_interval=args.churn_interval,
        )
    _print_server_summary(server, report)
    _maybe_write_metrics(args)
    return 0 if report.ok else 1


def _cmd_mutate(args) -> int:
    """Churn a graph through incremental label repair, graded."""
    import random as random_module

    from .core.orders import degree_order
    from .dynamic import DynamicHubLabeling, mutation_script
    from .perf.build import build_flat_labels

    graph = _load_graph(args)
    order = degree_order(graph)
    cache = None
    if args.cache_dir:
        from .perf.cache import LabelCache

        cache = LabelCache(args.cache_dir)
    try:
        dyn = DynamicHubLabeling(
            graph,
            order=order,
            cache=cache,
            rebuild_fraction=args.rebuild_fraction,
            staleness_budget=args.staleness_budget,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    script = mutation_script(
        graph,
        args.ops,
        seed=args.seed,
        keep_connected=not args.allow_disconnect,
    )
    inserts, deletes = script.counts()
    print(f"graph:  {graph}")
    print(
        f"script: {len(script)} ops ({inserts} inserts, {deletes} "
        f"deletes), seed={args.seed}, "
        f"{'kept-connected' if not args.allow_disconnect else 'may disconnect'}"
    )

    def grade() -> int:
        """Repaired answers vs a from-scratch rebuild, value AND type."""
        reference = build_flat_labels(dyn.graph, list(order))
        rng = random_module.Random(args.seed ^ 0xD15C0)
        n = dyn.graph.num_vertices
        pairs = [
            (rng.randrange(n), rng.randrange(n))
            for _ in range(args.verify_sample)
        ]
        bad = 0
        for u, v in pairs:
            got, want = dyn.query(u, v), reference.query(u, v)
            if got != want or type(got) is not type(want):
                bad += 1
                if bad <= 5:
                    print(
                        f"  MISMATCH dist({u},{v}) = {got!r}, "
                        f"want {want!r}"
                    )
        return bad

    mismatches = 0
    for report in dyn.apply(script):
        print(report.render())
        if args.verify_each:
            mismatches += grade()
    if not args.verify_each:
        mismatches += grade()
    print(f"graph after churn: {dyn.graph}")
    print(f"staleness: {dyn.staleness:.3f} (budget {args.staleness_budget})")
    verdict = "OK" if mismatches == 0 else "FAILED"
    print(
        f"repair vs rebuild: {mismatches} mismatch(es) over "
        f"{args.verify_sample} sampled pair(s) -- {verdict}"
    )
    _maybe_write_metrics(args)
    return 0 if mismatches == 0 else 1


def _cmd_instance(args) -> int:
    from .lowerbound import build_degree3_instance, certificate_for

    inst = build_degree3_instance(args.b, args.ell)
    cert = certificate_for(inst)
    print(inst)
    print(
        f"anatomy: {inst.num_core_vertices} cores, "
        f"{inst.num_tree_vertices} tree nodes, "
        f"{inst.num_path_vertices} path nodes"
    )
    print(
        f"certificate: sum|S_v| >= {cert.hub_sum_lower_bound:.6f} "
        f"(avg >= {cert.average_lower_bound:.3e})"
    )
    return 0


def _cmd_bench(args) -> int:
    from .perf.bench import (
        render_results,
        run_bench,
        run_zoo_bench,
        write_results,
    )

    results = {}
    if args.suite in ("core", "all"):
        results.update(
            run_bench(
                quick=args.quick,
                seed=args.seed,
                num_sources=args.sources,
                repeats=args.repeats,
                workers=args.workers,
                cache_dir=args.cache_dir,
            )
        )
    if args.suite in ("graph_zoo", "all"):
        results.update(
            run_zoo_bench(
                quick=args.quick,
                seed=args.seed,
                num_sources=args.sources,
                repeats=args.repeats,
            )
        )
    print(render_results(results))
    write_results(_merge_bench_results(args, results), args.out)
    print(f"\nwrote {args.out}")
    _maybe_write_metrics(args)
    mismatches = sum(
        int(row["value"])
        for row in results.values()
        if row.get("metric") == "mismatches" and row.get("value")
    )
    if mismatches:
        print(
            f"error: backends disagree on {mismatches} answer(s) "
            "across the consistency suites",
            file=sys.stderr,
        )
        return 1
    return 0


def _merge_bench_results(args, results):
    """Merge fresh bench entries over the out-file's other half.

    A ``--suite graph_zoo`` run must not discard the committed core
    ``G(b,l)`` rows (and vice versa), so the half that was *not* re-run
    is carried over from the existing file; the re-run half is replaced
    wholesale, so removed suites cannot linger as stale rows.
    """
    if args.suite == "all" or not os.path.exists(args.out):
        return results
    try:
        with open(args.out) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return results
    if not isinstance(previous, dict):
        return results
    keep_zoo = args.suite == "core"
    kept = {
        name: row
        for name, row in previous.items()
        if isinstance(row, dict)
        and name.startswith("graph_zoo.") == keep_zoo
    }
    kept.update(results)
    return kept


def _run_stats_workload(args) -> None:
    """Drive an instrumented batch workload through both oracle backends."""
    from .oracles.oracle import HubLabelOracle

    graph = _load_graph(args)
    labeling = _build_labeling(graph, args.method, args.seed)
    n = graph.num_vertices
    rng = random.Random(args.seed)
    pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(args.pairs)
    ]
    for backend in ("dict", "flat"):
        HubLabelOracle(labeling, backend=backend).batch_query(pairs)


def _cmd_stats(args) -> int:
    from .obs.export import load_snapshot, render_prometheus, render_table
    from .obs.registry import get_registry

    if args.snapshot:
        try:
            snapshot = load_snapshot(args.snapshot)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    else:
        _run_stats_workload(args)
        snapshot = get_registry().snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.prom:
        sys.stdout.write(render_prometheus(snapshot))
    else:
        print(render_table(snapshot))
    return 0


_EXPERIMENTS = {
    "E1": ("figure 1", "fast"),
    "E2": ("construction claims", "fast"),
    "E4": ("lower bound", "slow"),
    "E5": ("sum-index", "slow"),
    "E6": ("upper bound", "fast"),
    "E7": ("hitting sets", "fast"),
    "E8": ("RS landscape", "fast"),
    "E9": ("baselines", "fast"),
    "E10": ("degree reduction", "fast"),
    "E11": ("oracles", "fast"),
    "E12": ("monotone", "fast"),
    "E13": ("approximation recipe", "fast"),
    "E14": ("bit sizes", "fast"),
    "AB": ("ablations", "fast"),
}


def _cmd_experiments(args) -> int:
    from . import experiments as exp

    wanted = set(args.only.split(",")) if args.only else set(_EXPERIMENTS)
    tables = []
    if "E1" in wanted:
        tables.append(exp.figure1_table(exp.run_figure1()))
    if "E2" in wanted:
        audits = [exp.audit_construction(1, 1)]
        if not args.fast:
            audits.append(exp.audit_construction(2, 1))
        tables.append(exp.construction_table(audits))
    if "E4" in wanted and not args.fast:
        tables.append(
            exp.lower_bound_table(exp.run_lower_bound([(1, 1), (2, 1)]))
        )
    if "E5" in wanted and not args.fast:
        tables.append(exp.sum_index_table(exp.run_sum_index([(2, 1)])))
    if "E6" in wanted:
        tables.append(
            exp.upper_bound_table(exp.run_upper_bound([60, 120]))
        )
    if "E7" in wanted:
        tables.append(exp.hitting_table(exp.run_hitting([60, 120])))
    if "E8" in wanted:
        tables.append(exp.ap_free_table(exp.run_ap_free([100, 1000])))
        tables.append(exp.rs_graph_table(exp.run_rs_graphs([51, 101])))
    if "E9" in wanted:
        tables.append(exp.baseline_table(exp.run_baselines()))
    if "E10" in wanted:
        tables.append(
            exp.degree_reduction_table([exp.audit_degree_reduction()])
        )
    if "E11" in wanted:
        tables.append(exp.oracle_table(exp.run_oracles()))
    if "E12" in wanted:
        tables.append(exp.monotone_table(exp.run_monotone()))
    if "E13" in wanted:
        tables.append(
            exp.approximation_table(exp.run_approximation([40, 80]))
        )
    if "E14" in wanted:
        tables.append(exp.bit_size_table(exp.run_bit_sizes([60, 120])))
    if "AB" in wanted:
        tables.append(exp.threshold_table(exp.run_threshold_sweep(n=60)))
        tables.append(exp.cover_rule_table(exp.run_cover_rule(n=60)))
        tables.append(exp.order_table(exp.run_order_ablation(scale=36)))
        tables.append(
            exp.sample_factor_table(exp.run_sample_factor(n=80))
        )
        tables.append(exp.pruning_table(exp.run_pruning_slack(n=50)))
    rendered = "\n\n".join(table.render() for table in tables)
    print(rendered)
    if args.write:
        pathlib_path = args.write
        with open(pathlib_path, "w") as handle:
            handle.write("# Experiment tables (generated by "
                         "`python -m repro experiments`)\n\n```\n")
            handle.write(rendered)
            handle.write("\n```\n")
        print(f"\nwrote {pathlib_path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for Kosowski-Uznanski-Viennot "
        "(PODC 2019): hub labeling hardness in sparse graphs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run experiment tables")
    p_exp.add_argument(
        "--only", help="comma-separated ids, e.g. E1,E8,E14,AB"
    )
    p_exp.add_argument(
        "--fast", action="store_true", help="skip the slow experiments"
    )
    p_exp.add_argument(
        "--write", metavar="FILE", help="also write the tables to FILE"
    )
    p_exp.set_defaults(func=_cmd_experiments)

    p_label = sub.add_parser("label", help="build a hub labeling")
    p_label.add_argument("--graph", help="edge-list file (n m, then u v w)")
    p_label.add_argument(
        "--generator", help="KIND:N with KIND in sparse|tree|grid|degree3|ba|powerlaw|smallworld|road|erdos"
    )
    p_label.add_argument(
        "--method",
        default="pll",
        choices=["pll", "greedy", "sparse", "rs"],
    )
    p_label.add_argument("--seed", type=int, default=0)
    p_label.add_argument("--save", help="write the labeling (binary)")
    p_label.add_argument(
        "--verify", action="store_true", help="check the cover property"
    )
    p_label.set_defaults(func=_cmd_label)

    p_build = sub.add_parser(
        "build", help="fast flat-label build (optionally cached)"
    )
    p_build.add_argument("--graph", help="edge-list file (n m, then u v w)")
    p_build.add_argument(
        "--generator", help="KIND:N with KIND in sparse|tree|grid|degree3|ba|powerlaw|smallworld|road|erdos"
    )
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the labels; later runs reload instead of building",
    )
    p_build.add_argument(
        "--save", help="also write the flat artifact to this file"
    )
    p_build.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the final metrics registry snapshot as JSON",
    )
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="query a saved labeling")
    p_query.add_argument(
        "labeling",
        nargs="?",
        help="binary labeling file (omit when --cache-dir builds the "
        "labels from a graph source)",
    )
    p_query.add_argument(
        "vertices", nargs="*", type=int, help="pairs: u1 v1 u2 v2 ..."
    )
    p_query.add_argument(
        "--graph", help="edge-list file (enables the resilient runtime)"
    )
    p_query.add_argument(
        "--generator", help="KIND:N graph source (alternative to --graph)"
    )
    p_query.add_argument("--seed", type=int, default=0)
    p_query.add_argument(
        "--fallback",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="degrade to exact search on integrity/budget trouble "
        "(default: on when a graph is given); --no-fallback raises "
        "typed errors instead",
    )
    p_query.add_argument(
        "--verify-sample",
        type=int,
        default=0,
        metavar="N",
        help="admission-check the labeling from N sampled sources "
        "(N >= n verifies exhaustively) before answering",
    )
    p_query.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="serve labels from this cache (needs a graph source); "
        "builds and persists them on the first run",
    )
    p_query.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the final metrics registry snapshot as JSON",
    )
    p_query.set_defaults(func=_cmd_query)

    p_inst = sub.add_parser("instance", help="build a hard instance")
    p_inst.add_argument("--b", type=int, default=1)
    p_inst.add_argument("--l", dest="ell", type=int, default=1)
    p_inst.set_defaults(func=_cmd_instance)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection sweep over the runtime"
    )
    p_chaos.add_argument("--graph", help="edge-list file")
    p_chaos.add_argument(
        "--generator",
        default="sparse:30",
        help="KIND:N graph source (default sparse:30)",
    )
    p_chaos.add_argument(
        "--method",
        default="pll",
        choices=["pll", "greedy", "sparse", "rs"],
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--trials", type=int, default=25, help="injections per fault kind"
    )
    p_chaos.add_argument(
        "--queries", type=int, default=10, help="graded queries per injection"
    )
    p_chaos.add_argument(
        "--faults",
        help=f"comma-separated subset of {','.join(FAULT_KINDS)}",
    )
    p_chaos.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="reuse cached canonical labels (--method pll only)",
    )
    p_chaos.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the final metrics registry snapshot as JSON",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    def add_serving_args(p, *, clients, requests):
        p.add_argument("--graph", help="edge-list file (n m, then u v w)")
        p.add_argument(
            "--generator",
            default="sparse:200",
            help="KIND:N graph source (default sparse:200)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="serve labels from this cache; builds and persists "
            "them on the first run",
        )
        p.add_argument(
            "--clients", type=int, default=clients,
            help=f"worker threads firing queries (default {clients})",
        )
        p.add_argument(
            "--requests", type=int, default=requests, metavar="N",
            help=f"queries per client (default {requests})",
        )
        p.add_argument(
            "--duration", type=float, default=None, metavar="SECONDS",
            help="run each client for this long instead of a fixed "
            "request count",
        )
        p.add_argument(
            "--max-queue", type=int, default=1024,
            help="admission-queue bound; beyond it requests are "
            "rejected with ServerOverloadError (default 1024)",
        )
        p.add_argument(
            "--max-batch", type=int, default=64,
            help="micro-batch size trigger (default 64)",
        )
        p.add_argument(
            "--max-delay", type=float, default=0.002,
            help="micro-batch deadline trigger, seconds (default 0.002)",
        )
        p.add_argument(
            "--cache-size", type=int, default=4096,
            help="LRU result-cache capacity; 0 disables (default 4096)",
        )
        p.add_argument(
            "--batch", type=int, default=64, metavar="WIDTH",
            help="pairs per submit_batch ticket; 0 switches the "
            "clients back to per-pair submit (default 64)",
        )
        p.add_argument(
            "--distribution",
            default="uniform",
            choices=["uniform", "zipf", "hotspot"],
            help="query-pair skew: uniform endpoints, zipf-ranked "
            "endpoints, or a few hot pairs (default uniform)",
        )
        p.add_argument(
            "--zipf-s", type=float, default=1.1, metavar="S",
            help="zipf exponent for --distribution zipf (default 1.1)",
        )
        p.add_argument(
            "--hot-pairs", type=int, default=16, metavar="K",
            help="hot-pair count for --distribution hotspot (default 16)",
        )
        p.add_argument(
            "--hot-fraction", type=float, default=0.9, metavar="F",
            help="traffic share of the hot pairs for --distribution "
            "hotspot (default 0.9)",
        )
        p.add_argument(
            "--shards", type=int, default=None,
            help="admission-queue stripes (default: min(4, max-queue))",
        )
        p.add_argument(
            "--dispatchers", type=int, default=1,
            help="dispatcher threads partitioning the shards (default 1)",
        )
        p.add_argument(
            "--processes", type=int, default=0, metavar="N",
            help="serve through N worker processes sharing one "
            "zero-copy label store (the sharded door); 0 keeps the "
            "in-process server (default 0)",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="dump the final metrics registry snapshot as JSON",
        )

    p_serve = sub.add_parser(
        "serve",
        help="self-test the concurrent serving layer (graded workload)",
    )
    add_serving_args(p_serve, clients=8, requests=250)
    p_serve.add_argument(
        "--resilient",
        action="store_true",
        help="serve through the resilient runtime instead of the raw "
        "flat oracle",
    )
    p_serve.add_argument(
        "--verify-sample",
        type=int,
        default=0,
        metavar="N",
        help="with --resilient: admission-check from N sampled sources",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen", help="throughput-focused load generation"
    )
    add_serving_args(p_loadgen, clients=4, requests=2000)
    p_loadgen.add_argument(
        "--validate",
        action="store_true",
        help="also grade every answer against dict-backend ground truth",
    )
    p_loadgen.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="mutate the served graph N times during the run, "
        "hot-swapping the incrementally repaired labeling into the "
        "live server and grading post-swap probes (incompatible "
        "with --validate)",
    )
    p_loadgen.add_argument(
        "--churn-interval", type=float, default=0.01, metavar="SECONDS",
        help="pause between churn mutations (default 0.01)",
    )
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_mutate = sub.add_parser(
        "mutate",
        help="churn a graph through incremental label repair, graded "
        "against a from-scratch rebuild",
    )
    p_mutate.add_argument("--graph", help="edge-list file (n m, then u v w)")
    p_mutate.add_argument(
        "--generator",
        default="sparse:100",
        help="KIND:N graph source (default sparse:100)",
    )
    p_mutate.add_argument("--seed", type=int, default=0)
    p_mutate.add_argument(
        "--ops", type=int, default=16, metavar="N",
        help="mutations to apply (default 16)",
    )
    p_mutate.add_argument(
        "--allow-disconnect",
        action="store_true",
        help="let deletions disconnect the graph (INF answers are "
        "then graded too)",
    )
    p_mutate.add_argument(
        "--rebuild-fraction", type=float, default=0.5, metavar="F",
        help="fall back to a full rebuild when one mutation affects "
        "more than this fraction of roots (default 0.5)",
    )
    p_mutate.add_argument(
        "--staleness-budget", type=float, default=4.0, metavar="B",
        help="accumulated affected-root fraction that forces a full "
        "rebuild (default 4.0)",
    )
    p_mutate.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="serve full rebuilds from this label cache",
    )
    p_mutate.add_argument(
        "--verify-sample", type=int, default=400, metavar="N",
        help="sampled pairs graded against the rebuild (default 400)",
    )
    p_mutate.add_argument(
        "--verify-each",
        action="store_true",
        help="grade after every mutation instead of once at the end",
    )
    p_mutate.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the final metrics registry snapshot as JSON",
    )
    p_mutate.set_defaults(func=_cmd_mutate)

    p_bench = sub.add_parser(
        "bench", help="run the pinned performance suites"
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="benchmark G(2,1) instead of the acceptance instance G(2,2) "
        "(and the small graph-zoo scale instead of the full one)",
    )
    p_bench.add_argument(
        "--suite",
        default="core",
        choices=["core", "graph_zoo", "all"],
        help="core runs the pinned G(b,l) suites, graph_zoo sweeps the "
        "generator zoo per family; either half merges into --out "
        "without disturbing the other (default core)",
    )
    p_bench.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="result file (default BENCH_perf.json)",
    )
    p_bench.add_argument("--seed", type=int, default=7)
    p_bench.add_argument(
        "--sources",
        type=int,
        default=64,
        metavar="N",
        help="workload roots: N sampled sources x every vertex",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, help="timings take the best of R"
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the traversal fan-out suite",
    )
    p_bench.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="directory for the cache suites (default: a temp dir)",
    )
    p_bench.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="dump the final metrics registry snapshot as JSON",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_stats = sub.add_parser(
        "stats", help="print the observability metrics registry"
    )
    p_stats.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot file written by --metrics-out (default: run a "
        "fresh instrumented workload instead)",
    )
    p_stats.add_argument("--graph", help="edge-list file for the workload")
    p_stats.add_argument(
        "--generator",
        default="sparse:100",
        help="KIND:N graph source (default sparse:100)",
    )
    p_stats.add_argument(
        "--method",
        default="pll",
        choices=["pll", "greedy", "sparse", "rs"],
    )
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument(
        "--pairs",
        type=int,
        default=10_000,
        help="batch workload size per backend (default 10000)",
    )
    fmt = p_stats.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true", help="print the snapshot as JSON"
    )
    fmt.add_argument(
        "--prom",
        action="store_true",
        help="print Prometheus text exposition",
    )
    p_stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # User/data errors are diagnosed in one line, never a traceback;
        # the exit code identifies the error class (see runtime.errors).
        print(f"error: {exc.diagnostic()}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 74  # EX_IOERR


if __name__ == "__main__":
    sys.exit(main())
