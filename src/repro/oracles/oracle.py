"""Centralized distance oracles with space/time accounting (Section 1).

The paper frames its result as precluding hub-label-based oracles on the
``S * T = O~(n^2)`` trade-off curve for sparse graphs.  This module
provides the concrete endpoints and middle of that spectrum so the
benchmarks can chart measured (space, query-time) points:

* :class:`MatrixOracle` -- ``S = O(n^2)`` words, ``T = O(1)``;
* :class:`HubLabelOracle` -- ``S = sum |S_v|`` words, ``T = O(|S_u| +
  |S_v|)``;
* :class:`LandmarkOracle` -- ``S = O(n^2 / T)`` words: distances to a
  ``k``-vertex landmark set are stored, plus a ball of radius bounded by
  the landmark separation is searched at query time (exact, because
  every long path hits a landmark).

Space is counted in stored machine words (ids + distances), time in
elementary operations reported by each query.
"""

from __future__ import annotations

import heapq
import random
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..core.hublabel import HubLabeling
from ..graphs.graph import Graph
from ..graphs.traversal import INF, shortest_path_distances
from ..obs.catalog import (
    ORACLE_BATCHES,
    ORACLE_BATCH_LATENCY_SECONDS,
    ORACLE_QUERIES,
    ORACLE_QUERY_LATENCY_SECONDS,
)
from ..obs.registry import get_registry as _get_registry
from ..runtime.errors import DomainError

__all__ = [
    "QueryOutcome",
    "MatrixOracle",
    "HubLabelOracle",
    "LandmarkOracle",
    "LATENCY_SAMPLE",
]

#: Scalar queries are timed deterministically 1-in-``LATENCY_SAMPLE``
#: (the ``oracle.queries`` counter stays exact); full per-query timing
#: would cost two clock reads per microsecond-scale merge and blow the
#: <= 10% instrumentation-overhead budget the bench gate enforces.
LATENCY_SAMPLE = 16


@dataclass(frozen=True)
class QueryOutcome:
    """An exact distance plus the work the oracle did to produce it.

    ``source`` records which engine produced the answer: ``"oracle"``
    for the plain oracles here, ``"label"`` / ``"fallback"`` for the
    resilient runtime's two paths.  Disconnected pairs uniformly get
    ``distance == INF`` (never an exception).
    """

    distance: float
    operations: int
    source: str = "oracle"


def _check_query_domain(num_vertices: int, u: int, v: int) -> None:
    """Shared vertex-id validation: every oracle rejects ids outside
    ``0..n-1`` with :class:`DomainError` instead of wrapping around
    (negative ids) or raising a raw IndexError."""
    for vertex in (u, v):
        if not 0 <= vertex < num_vertices:
            raise DomainError(
                f"vertex {vertex} outside 0..{num_vertices - 1}"
            )


class MatrixOracle:
    """Full APSP matrix: maximal space, constant-time queries."""

    name = "matrix"

    def __init__(self, graph: Graph) -> None:
        self._rows: List[List[float]] = [
            shortest_path_distances(graph, v)[0] for v in graph.vertices()
        ]

    def space_words(self) -> int:
        return sum(len(row) for row in self._rows)

    def query(self, u: int, v: int) -> QueryOutcome:
        _check_query_domain(len(self._rows), u, v)
        return QueryOutcome(distance=self._rows[u][v], operations=1)


class HubLabelOracle:
    """A hub labeling used as a centralized oracle.

    ``backend`` selects the label store: ``"dict"`` keeps the mutable
    per-vertex dictionaries of :class:`HubLabeling`; ``"flat"`` freezes
    them into a :class:`~repro.perf.flat.FlatHubLabeling` (immutable
    CSR arrays, pointer-merge queries, vectorized :meth:`batch_query`).
    Either store answers every query identically; only speed and
    memory layout change.
    """

    name = "hub-label"

    def __init__(self, labeling, *, backend: str = "dict") -> None:
        if backend not in ("dict", "flat"):
            raise ValueError(
                f"backend must be 'dict' or 'flat', got {backend!r}"
            )
        # Imported lazily: repro.perf sits above the oracles layer.
        from ..perf.flat import FlatHubLabeling

        if backend == "flat" and not isinstance(labeling, FlatHubLabeling):
            labeling = FlatHubLabeling.from_labeling(labeling)
        elif backend == "dict" and isinstance(labeling, FlatHubLabeling):
            labeling = labeling.to_labeling()
        self._labeling = labeling
        self._backend = backend
        # Metrics bind lazily against the active registry and rebind if
        # it is swapped (tests isolate themselves that way); under a
        # disabled registry the query path skips all metric work.  The
        # scalar path additionally caches per-thread state (the calling
        # thread's counter cell + the latency histogram) in a
        # threading.local, so concurrent clients count exactly without
        # a lock on the hottest line in the codebase.
        self._obs_registry = None
        self._obs: Optional[tuple] = None
        self._tlocal = threading.local()

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        *,
        order: Optional[List[int]] = None,
        backend: str = "flat",
        cache_dir=None,
    ) -> "HubLabelOracle":
        """Build an oracle straight from a graph, labels included.

        The construction end-to-end path: the canonical hierarchical
        labeling is produced by the bit-parallel direct-to-flat builder
        (:func:`repro.perf.build.build_flat_labels`) -- no dict
        intermediate, no conversion pass -- and served through the
        requested ``backend``.  With ``cache_dir`` the labels go
        through :class:`repro.perf.cache.LabelCache`, so repeat runs
        skip construction entirely.
        """
        # Imported lazily: repro.perf sits above the oracles layer.
        if cache_dir is not None:
            from ..perf.cache import LabelCache

            flat = LabelCache(cache_dir).load_or_build(graph, order)
        else:
            from ..perf.build import build_flat_labels

            flat = build_flat_labels(graph, order)
        return cls(flat, backend=backend)

    def _rebind_obs(self, registry) -> Optional[tuple]:
        if registry.enabled:
            backend = self._backend
            obs = (
                registry.counter(ORACLE_QUERIES, backend=backend),
                registry.histogram(
                    ORACLE_QUERY_LATENCY_SECONDS, backend=backend
                ),
                registry.counter(ORACLE_BATCHES, backend=backend),
                registry.histogram(
                    ORACLE_BATCH_LATENCY_SECONDS, backend=backend
                ),
            )
        else:
            obs = None
        # Publish the tuple before the registry marker: a concurrent
        # reader that sees the marker match must never pick up a stale
        # (possibly None) tuple and silently skip counting.
        self._obs = obs
        self._obs_registry = registry
        return obs

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def labeling(self):
        """The underlying label store (dict or flat, per ``backend``)."""
        return self._labeling

    @property
    def accepts_pair_arrays(self) -> bool:
        """True when :meth:`batch_query` natively consumes an ``(m, 2)``
        int64 ndarray (the flat backend's kernels do; the dict backend
        would only iterate it slowly).  Batch producers such as
        :class:`~repro.serve.server.QueryServer` use this to skip the
        array -> tuple-list -> array round trip on the hot path --
        answers are byte-identical either way."""
        return self._backend == "flat"

    def space_words(self) -> int:
        # One (hub, distance) pair per entry.
        return 2 * self._labeling.total_size()

    def _bind_thread_obs(self, registry) -> tuple:
        """The calling thread's cached scalar-path instrumentation:
        ``(registry, counter cell, latency histogram)`` -- or ``(registry,
        None, None)`` under a disabled registry."""
        obs = (
            self._obs
            if registry is self._obs_registry
            else self._rebind_obs(registry)
        )
        if obs is None:
            state = (registry, None, None)
        else:
            state = (registry, obs[0].cell(), obs[1])
        self._tlocal.state = state
        return state

    def query(self, u: int, v: int) -> QueryOutcome:
        """:meth:`_serve` plus metrics: an exact per-backend query
        counter and a 1-in-``LATENCY_SAMPLE`` latency histogram sample
        (see the module constant for why sampling)."""
        registry = _get_registry()
        state = getattr(self._tlocal, "state", None)
        if state is None or state[0] is not registry:
            state = self._bind_thread_obs(registry)
        cell = state[1]
        if cell is None:
            return self._serve(u, v)
        # The cell is this thread's shard of the query counter: bumping
        # it inline is exact under any concurrency (single writer) and
        # as cheap as the attribute write it replaces.  The sampling
        # cadence keys off the same per-thread count, so each thread
        # times 1-in-LATENCY_SAMPLE of its own queries -- exactly the
        # global cadence when single-threaded, the same sampling *rate*
        # when not.  A query that raises is never counted.
        count = cell[0] + 1
        if count % LATENCY_SAMPLE:
            outcome = self._serve(u, v)
            cell[0] = count
            return outcome
        start = perf_counter()
        outcome = self._serve(u, v)
        elapsed = perf_counter() - start
        cell[0] = count
        state[2].observe(elapsed)
        return outcome

    def _serve(self, u: int, v: int) -> QueryOutcome:
        _check_query_domain(self._labeling.num_vertices, u, v)
        operations = min(
            self._labeling.label_size(u), self._labeling.label_size(v)
        )
        return QueryOutcome(
            distance=self._labeling.query(u, v), operations=operations
        )

    def batch_query(self, pairs) -> List[float]:
        """Distances for a list of pairs (no per-query accounting).

        The flat backend dispatches to its vectorized kernels; the dict
        backend loops the scalar query.  Answers are identical either
        way -- this is the oracle surface the benchmark gate compares.
        Metrics: the query counter grows by ``len(pairs)``, the batch
        latency histogram gets the batch wall time, and the scalar
        latency histogram gets the batch's per-pair mean once.
        """
        registry = _get_registry()
        obs = (
            self._obs
            if registry is self._obs_registry
            else self._rebind_obs(registry)
        )
        if obs is None:
            return self._serve_batch(pairs)
        start = perf_counter()
        answers = self._serve_batch(pairs)
        elapsed = perf_counter() - start
        obs[0].inc(len(answers))
        obs[2].inc()
        obs[3].observe(elapsed)
        if answers:
            obs[1].observe(elapsed / len(answers))
        return answers

    def _serve_batch(self, pairs) -> List[float]:
        n = self._labeling.num_vertices
        if self._backend == "flat":
            return self._labeling.batch_query(pairs)
        for u, v in pairs:
            _check_query_domain(n, u, v)
        query = self._labeling.query
        return [query(u, v) for u, v in pairs]


class LandmarkOracle:
    """Landmark distances plus bounded bidirectional search.

    ``k`` landmarks are sampled (plus a deterministic degree-based
    seed); every vertex stores its distance to each landmark
    (``S = O(n k)``).  A query runs Dijkstra from both endpoints but
    *prunes* any vertex whose best landmark route cannot be improved --
    and, crucially, first computes the landmark upper bound
    ``min_l d(u, l) + d(l, v)`` and stops the searches at radius
    ``bound / 2``.  Exactness: the true shortest path either stays
    within the two balls (found by the search) or leaves them, in which
    case it has length >= bound and the landmark route is tight enough.
    """

    name = "landmark"

    def __init__(
        self,
        graph: Graph,
        num_landmarks: int,
        *,
        seed: int = 0,
        workers: Optional[int] = None,
    ) -> None:
        if num_landmarks < 1:
            raise ValueError("need at least one landmark")
        self._graph = graph
        n = graph.num_vertices
        rng = random.Random(seed)
        chosen = set()
        # Highest-degree vertex anchors the set; the rest are random.
        if n:
            chosen.add(max(graph.vertices(), key=graph.degree))
        while len(chosen) < min(num_landmarks, n):
            chosen.add(rng.randrange(n))
        self._landmarks = sorted(chosen)
        # Per-landmark sweeps are independent; ``workers`` fans them out
        # over a process pool (None/1 = serial, identical rows).
        from ..perf.parallel import shortest_path_rows

        self._to_landmark: List[List[float]] = shortest_path_rows(
            graph, self._landmarks, workers=workers
        )

    def space_words(self) -> int:
        return len(self._landmarks) * self._graph.num_vertices

    def landmark_upper_bound(self, u: int, v: int) -> float:
        best = INF
        for row in self._to_landmark:
            candidate = row[u] + row[v]
            if candidate < best:
                best = candidate
        return best

    def query(self, u: int, v: int) -> QueryOutcome:
        _check_query_domain(self._graph.num_vertices, u, v)
        if u == v:
            return QueryOutcome(distance=0, operations=1)
        bound = self.landmark_upper_bound(u, v)
        operations = len(self._landmarks)
        # Bidirectional Dijkstra capped at the landmark bound.
        n = self._graph.num_vertices
        dist_f: Dict[int, float] = {u: 0}
        dist_b: Dict[int, float] = {v: 0}
        heap_f: List[Tuple[float, int]] = [(0, u)]
        heap_b: List[Tuple[float, int]] = [(0, v)]
        best = bound
        while heap_f or heap_b:
            if heap_f and heap_b:
                if heap_f[0][0] + heap_b[0][0] >= best:
                    break
            elif heap_f:
                if heap_f[0][0] >= best:
                    break
            elif heap_b[0][0] >= best:
                break
            if not heap_b or (heap_f and heap_f[0][0] <= heap_b[0][0]):
                heap, dist, other = heap_f, dist_f, dist_b
            else:
                heap, dist, other = heap_b, dist_b, dist_f
            d, x = heapq.heappop(heap)
            if d > dist.get(x, INF):
                continue
            operations += 1
            other_d = other.get(x)
            if other_d is not None and d + other_d < best:
                best = d + other_d
            for y, w in self._graph.neighbors(x):
                nd = d + w
                if nd < dist.get(y, INF) and nd < best:
                    dist[y] = nd
                    heapq.heappush(heap, (nd, y))
                    operations += 1
                    other_d = other.get(y)
                    if other_d is not None and nd + other_d < best:
                        best = nd + other_d
        return QueryOutcome(distance=best, operations=operations)
