"""Centralized distance oracles (Section 1's ``S * T`` trade-off)."""

from .oracle import (
    HubLabelOracle,
    LandmarkOracle,
    MatrixOracle,
    QueryOutcome,
)

__all__ = [
    "HubLabelOracle",
    "LandmarkOracle",
    "MatrixOracle",
    "QueryOutcome",
]
