"""Matchings, vertex covers, and induced matchings on bipartite graphs.

The upper-bound proof (Lemma 4.2) takes, for every triple ``(a, b, h)``,
a *maximal* matching of the bipartite pair graph ``E^h_{a,b}``, bounds
the minimum vertex cover by twice its size, and shows the matchings for
equal-colored hubs tile a Ruzsa-Szemeredi graph as induced matchings.
This module provides those primitives on bipartite graphs given as plain
edge lists of ``(left, right)`` pairs (left and right vertex universes
may overlap; they are treated as disjoint copies).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "greedy_maximal_matching",
    "maximum_bipartite_matching",
    "konig_vertex_cover",
    "is_matching",
    "is_induced_matching",
    "verify_induced_matching_partition",
]

Edge = Tuple[int, int]


def greedy_maximal_matching(edges: Iterable[Edge]) -> List[Edge]:
    """A maximal (not maximum) matching by greedy scan.

    Maximality is all Lemma 4.2 needs: ``|VC| <= 2 |MM|``.
    """
    used_left: Set[int] = set()
    used_right: Set[int] = set()
    matching: List[Edge] = []
    for u, v in edges:
        if u not in used_left and v not in used_right:
            used_left.add(u)
            used_right.add(v)
            matching.append((u, v))
    return matching


def maximum_bipartite_matching(
    edges: Sequence[Edge],
) -> List[Edge]:
    """A maximum matching via Hopcroft-Karp.

    Vertices are the values appearing in ``edges`` (left/right handled as
    disjoint universes).
    """
    adjacency: Dict[int, List[int]] = {}
    rights: Set[int] = set()
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        rights.add(v)
    match_left: Dict[int, int] = {}
    match_right: Dict[int, int] = {}
    INFINITE = float("inf")
    dist: Dict[int, float] = {}

    def bfs() -> bool:
        queue = deque()
        dist.clear()
        for u in adjacency:
            if u not in match_left:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INFINITE
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right.get(v)
                if w is None:
                    found = True
                elif dist.get(w, INFINITE) == INFINITE:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right.get(v)
            if w is None or (dist.get(w) == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INFINITE
        return False

    while bfs():
        for u in list(adjacency):
            if u not in match_left:
                dfs(u)
    return sorted(match_left.items())


def konig_vertex_cover(
    edges: Sequence[Edge],
) -> Tuple[Set[int], Set[int]]:
    """A minimum vertex cover ``(left_cover, right_cover)`` via Koenig.

    Computes a maximum matching, then the alternating-reachability set
    ``Z`` from unmatched left vertices; the cover is
    ``(L \\ Z) ∪ (R ∩ Z)``.  ``|cover| == |maximum matching|``.
    """
    matching = maximum_bipartite_matching(edges)
    match_left = dict(matching)
    match_right = {v: u for u, v in matching}
    adjacency: Dict[int, List[int]] = {}
    lefts: Set[int] = set()
    rights: Set[int] = set()
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
        lefts.add(u)
        rights.add(v)
    # Alternating BFS from unmatched left vertices.
    visited_left: Set[int] = {u for u in lefts if u not in match_left}
    visited_right: Set[int] = set()
    queue = deque(visited_left)
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, []):
            if v in visited_right:
                continue
            if match_left.get(u) == v:
                continue  # only unmatched edges L -> R
            visited_right.add(v)
            w = match_right.get(v)
            if w is not None and w not in visited_left:
                visited_left.add(w)
                queue.append(w)
    left_cover = lefts - visited_left
    right_cover = rights & visited_right
    return left_cover, right_cover


def is_matching(edges: Sequence[Edge]) -> bool:
    """True iff no left or right endpoint repeats."""
    lefts = [u for u, _ in edges]
    rights = [v for _, v in edges]
    return len(set(lefts)) == len(lefts) and len(set(rights)) == len(rights)


def is_induced_matching(
    graph_edges: Set[Edge], matching: Sequence[Edge]
) -> bool:
    """True iff ``matching`` is induced in the bipartite graph.

    Induced: the only graph edges between matched left endpoints and
    matched right endpoints are the matching edges themselves.
    """
    if not is_matching(matching):
        return False
    matched = set(matching)
    lefts = [u for u, _ in matching]
    rights = [v for _, v in matching]
    for u in lefts:
        for v in rights:
            if (u, v) in graph_edges and (u, v) not in matched:
                return False
    return True


def verify_induced_matching_partition(
    graph_edges: Set[Edge], matchings: Sequence[Sequence[Edge]]
) -> bool:
    """Check that ``matchings`` partition ``graph_edges`` into induced
    matchings (the Ruzsa-Szemeredi property, Definition 1.3)."""
    seen: Set[Edge] = set()
    for matching in matchings:
        for edge in matching:
            if edge in seen or edge not in graph_edges:
                return False
            seen.add(edge)
        if not is_induced_matching(graph_edges, matching):
            return False
    return seen == graph_edges
