"""Bounds and estimates for the Ruzsa-Szemeredi function ``RS(n)``.

Known bounds (Section 1.2 of the paper)::

    2^{Omega(log* n)}  <=  RS(n)  <=  2^{O(sqrt(log n))}

The lower bound is Fox's quantitative removal lemma; the upper bound is
Behrend's construction (a dense RS graph witnesses that ``RS`` cannot be
large).  These functions give concrete, constant-explicit versions used
by the benchmark harness to place measured values on the known envelope;
they are *reference curves*, not tight truths -- exactly as the paper
only ever uses ``RS(n)`` symbolically.
"""

from __future__ import annotations

import math

__all__ = [
    "rs_upper_bound",
    "rs_lower_bound",
    "log_star",
    "behrend_density_bound",
    "empirical_rs_from_graph",
]


def log_star(n: float) -> int:
    """The iterated logarithm (base 2): steps of log2 until <= 1."""
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1:
        value = math.log2(value)
        count += 1
    return count


def rs_upper_bound(n: int, constant: float = 2 * math.sqrt(2 * math.log(2))) -> float:
    """Behrend-style upper bound ``RS(n) <= e^{c sqrt(ln n)}``.

    The default constant is the classical ``2 sqrt(2 ln 2)`` from
    Behrend's density; any graph built by
    :func:`repro.rs.rsgraph.build_rs_graph` has ``n^2 / RS`` edges with
    ``RS`` below (a constant multiple of) this curve.
    """
    if n < 2:
        return 1.0
    return math.exp(constant * math.sqrt(math.log(n)))


def rs_lower_bound(n: int) -> float:
    """Fox-style lower bound ``RS(n) >= 2^{c log* n}`` (with c = 1)."""
    if n < 2:
        return 1.0
    return 2.0 ** log_star(n)


def behrend_density_bound(limit: int) -> float:
    """Behrend's guaranteed AP-free set size ``limit / e^{c sqrt(ln limit)}``."""
    if limit < 2:
        return float(max(limit, 0))
    c = 2 * math.sqrt(2 * math.log(2))
    return limit / math.exp(c * math.sqrt(math.log(limit)))


def empirical_rs_from_graph(num_vertices: int, num_edges: int) -> float:
    """The RS value certified by a concrete RS graph: ``n^2 / m``.

    A *small* ratio is a strong witness (dense graph decomposable into
    induced matchings); ``RS(n)`` is at most this ratio.
    """
    if num_edges <= 0:
        return float("inf")
    return num_vertices * num_vertices / num_edges
