"""Ruzsa-Szemeredi graphs: dense graphs tiled by induced matchings.

Definition 1.3 of the paper: a graph on ``n`` vertices whose edges can be
partitioned into at most ``n`` induced matchings; ``RS(n)`` is the
largest function such that every such graph has at most ``n^2 / RS(n)``
edges.

The classic dense construction (via Behrend's progression-free sets)
realized here is the *midpoint* form, which is exactly the structure the
paper's hard instances mimic:

* left and right vertex copies of ``Z_q`` (``q`` odd);
* an edge ``(a_L, b_R)`` whenever ``(b - a) / 2 mod q`` lies in the
  AP-free set ``S`` (with ``S ⊆ [1, q/4)`` so sums never wrap);
* the matching of an edge is indexed by its *midpoint*
  ``x = (a + b) / 2 mod q``: ``M_x = {((x - s)_L, (x + s)_R) : s ∈ S}``.

AP-freeness of ``S`` makes every ``M_x`` induced (a cross edge would
force a 3-term progression), and midpoints partition the edges, so the
bipartite graph on ``2q`` vertices has ``q`` induced matchings and
``q * |S| = q^2 / 2^{O(sqrt(log q))}`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from .behrend import behrend_set, is_progression_free
from .matchings import verify_induced_matching_partition

__all__ = ["RSGraph", "build_rs_graph", "matching_of_edge"]

Edge = Tuple[int, int]


@dataclass
class RSGraph:
    """A bipartite Ruzsa-Szemeredi graph with its matching partition.

    ``num_classes`` is ``q``; vertices are ``0 .. q-1`` (left copy) and
    ``q .. 2q-1`` (right copy).  ``matchings[x]`` is the induced matching
    whose edges have midpoint ``x``.
    """

    num_classes: int
    difference_set: List[int]
    edges: Set[Edge]
    matchings: List[List[Edge]]

    @property
    def num_vertices(self) -> int:
        return 2 * self.num_classes

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_matchings(self) -> int:
        return sum(1 for m in self.matchings if m)

    def density_ratio(self) -> float:
        """``n^2 / m`` -- the empirical RS(n) value this graph certifies."""
        if not self.edges:
            return float("inf")
        n = self.num_vertices
        return n * n / len(self.edges)

    def verify(self) -> bool:
        """Full check of the RS property (quadratic; tests only)."""
        if not is_progression_free(self.difference_set):
            return False
        if self.num_matchings > self.num_vertices:
            return False
        return verify_induced_matching_partition(self.edges, self.matchings)


def build_rs_graph(num_classes: int, *, difference_set: Sequence[int] = None) -> RSGraph:
    """Build the midpoint RS graph on ``2 * num_classes`` vertices.

    ``num_classes`` must be odd (so halving mod q is a bijection).  The
    difference set defaults to Behrend's construction inside
    ``[1, num_classes / 4)``; a custom AP-free set may be supplied.
    """
    q = num_classes
    if q < 3 or q % 2 == 0:
        raise ValueError("num_classes must be an odd integer >= 3")
    if difference_set is None:
        quarter = max(2, q // 4)
        difference_set = [s for s in behrend_set(quarter) if s >= 1]
        if not difference_set:
            difference_set = [1]
    differences = sorted(set(difference_set))
    if not differences:
        raise ValueError("difference set must be non-empty")
    if min(differences) < 1 or 2 * max(differences) >= q:
        # ``s + s' <= 2 max < q`` keeps all midpoint sums carry-free, which
        # is what turns AP-freeness into inducedness.
        raise ValueError("difference set must lie in [1, q/2)")
    if not is_progression_free(differences):
        raise ValueError("difference set must be 3-AP free")
    edges: Set[Edge] = set()
    matchings: List[List[Edge]] = [[] for _ in range(q)]
    for x in range(q):
        for s in differences:
            left = (x - s) % q
            right = q + (x + s) % q
            edge = (left, right)
            edges.add(edge)
            matchings[x].append(edge)
    return RSGraph(
        num_classes=q,
        difference_set=differences,
        edges=edges,
        matchings=matchings,
    )


def matching_of_edge(graph: RSGraph, edge: Edge) -> int:
    """The midpoint class that owns ``edge`` (inverse of the partition)."""
    left, right = edge
    if edge not in graph.edges:
        raise KeyError(f"edge {edge} not in the graph")
    q = graph.num_classes
    a = left
    b = right - q
    total = (a + b) % q
    half = (total * ((q + 1) // 2)) % q  # multiply by the inverse of 2
    return half
