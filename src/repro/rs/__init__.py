"""Ruzsa-Szemeredi substrate: AP-free sets, RS graphs, matchings.

Everything Section 4 of the paper needs from additive combinatorics:

* Behrend's 3-AP-free sets (and a greedy baseline) -- :mod:`.behrend`;
* dense bipartite graphs edge-partitioned into induced matchings, in the
  midpoint form mirrored by the paper's hard instances -- :mod:`.rsgraph`;
* matching / vertex-cover / induced-matching machinery used by the
  Theorem 4.1 construction -- :mod:`.matchings`;
* reference curves for ``RS(n)`` -- :mod:`.function`.
"""

from .behrend import (
    behrend_set,
    greedy_progression_free,
    is_progression_free,
    stanley_sequence,
)
from .matchings import (
    greedy_maximal_matching,
    is_induced_matching,
    is_matching,
    konig_vertex_cover,
    maximum_bipartite_matching,
    verify_induced_matching_partition,
)
from .rsgraph import RSGraph, build_rs_graph, matching_of_edge
from .triangles import TriangleSystem, build_triangle_system
from .partition import (
    greedy_induced_matching,
    greedy_induced_partition,
    strong_edge_classes_upper_bound,
)
from .function import (
    behrend_density_bound,
    empirical_rs_from_graph,
    log_star,
    rs_lower_bound,
    rs_upper_bound,
)

__all__ = [
    "behrend_set",
    "greedy_progression_free",
    "is_progression_free",
    "stanley_sequence",
    "greedy_maximal_matching",
    "is_induced_matching",
    "is_matching",
    "konig_vertex_cover",
    "maximum_bipartite_matching",
    "verify_induced_matching_partition",
    "RSGraph",
    "build_rs_graph",
    "matching_of_edge",
    "TriangleSystem",
    "build_triangle_system",
    "greedy_induced_matching",
    "greedy_induced_partition",
    "strong_edge_classes_upper_bound",
    "behrend_density_bound",
    "empirical_rs_from_graph",
    "log_star",
    "rs_lower_bound",
    "rs_upper_bound",
]
