"""The original Ruzsa-Szemeredi triangle systems [RS78].

Ruzsa and Szemeredi's paper ("Triple systems with no six points
carrying three triangles") phrased the phenomenon with triangles: from
a 3-AP-free set ``S ⊆ [q]`` build the tripartite graph on
``X = [q], Y = [2q], Z = [3q]`` with, for every ``x ∈ [q], s ∈ S``,
the triangle::

    (x)_X -- (x + s)_Y -- (x + 2s)_Z -- (x)_X

AP-freeness makes the system *linear*: every edge lies in **exactly
one** triangle (a second triangle through an edge would force a
3-term progression), yet the graph has ``3 q |S|`` edges -- the same
density phenomenon as the induced-matching form in
:mod:`repro.rs.rsgraph`, and the seed of the (6,3)-theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .behrend import behrend_set, is_progression_free

__all__ = ["TriangleSystem", "build_triangle_system"]

Edge = Tuple[int, int]


@dataclass
class TriangleSystem:
    """The tripartite triangle graph with its triangle list.

    Vertices: ``0 .. q-1`` (X), ``q .. 3q-1`` (Y, values x+s in [0, 2q)),
    ``3q .. 6q-1`` (Z, values x+2s in [0, 3q)).
    """

    q: int
    difference_set: List[int]
    triangles: List[Tuple[int, int, int]]
    edges: Set[Edge]

    @property
    def num_vertices(self) -> int:
        return 6 * self.q

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def all_graph_triangles(self) -> List[Tuple[int, int, int]]:
        """Every triangle the *graph* contains (not just the intended
        ones): X-Y-Z triples with all three edges present.

        A stray triangle would mix three different intended triangles
        and forces a 3-term progression in ``S`` -- so for an AP-free
        set this returns exactly ``self.triangles``.
        """
        by_y: Dict[int, List[int]] = {}
        for a, b in (
            (a, b) for (a, b) in self.edges if a < self.q and b < 3 * self.q
        ):
            if b >= self.q:  # X-Y edge
                by_y.setdefault(b, []).append(a)
        found = []
        z_neighbors: Dict[int, List[int]] = {}
        for b, c in (
            (b, c)
            for (b, c) in self.edges
            if self.q <= b < 3 * self.q and c >= 3 * self.q
        ):
            z_neighbors.setdefault(b, []).append(c)
        for b, xs in by_y.items():
            for c in z_neighbors.get(b, []):
                for a in xs:
                    if (a, c) in self.edges:
                        found.append((a, b, c))
        return sorted(found)

    def is_linear(self) -> bool:
        """Every edge lies in exactly one *graph* triangle (RS78).

        Equivalent to: the graph contains no triangles beyond the
        intended ``q * |S|`` ones -- which is what AP-freeness buys.
        """
        return self.all_graph_triangles() == sorted(self.triangles)


def build_triangle_system(
    q: int, *, difference_set: Sequence[int] = None
) -> TriangleSystem:
    """Build the RS78 triangle system over ``[q]`` with set ``S``.

    ``S`` defaults to Behrend's construction in ``[1, q)``; it must be
    3-AP-free, which is what forbids a second triangle on any edge.
    """
    if q < 2:
        raise ValueError("q must be >= 2")
    if difference_set is None:
        difference_set = [s for s in behrend_set(q) if s >= 1] or [1]
    differences = sorted(set(difference_set))
    if min(differences) < 1 or max(differences) >= q:
        raise ValueError("difference set must lie in [1, q)")
    if not is_progression_free(differences):
        raise ValueError("difference set must be 3-AP free")
    y_base = q
    z_base = 3 * q
    triangles: List[Tuple[int, int, int]] = []
    edges: Set[Edge] = set()
    for x in range(q):
        for s in differences:
            a = x
            b = y_base + x + s  # x + s in [1, 2q)
            c = z_base + x + 2 * s  # x + 2s in [2, 3q)
            triangles.append((a, b, c))
            edges.add((a, b))
            edges.add((b, c))
            edges.add((a, c))
    return TriangleSystem(
        q=q,
        difference_set=differences,
        triangles=triangles,
        edges=edges,
    )
