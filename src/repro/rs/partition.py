"""Greedy edge partition into induced matchings.

Definition 1.3 asks whether a graph's edges split into at most ``n``
induced matchings.  The constructions in :mod:`repro.rs.rsgraph` come
with their partition; for *arbitrary* bipartite graphs this module
computes one greedily, giving an upper-bound witness on the number of
classes needed (the "strong chromatic index" of the edge set):

* each round extracts a maximal *induced* matching from the remaining
  edges (greedy: take an edge, discard every remaining edge sharing an
  endpoint **or** connecting the matched vertex sets, repeat);
* rounds continue until no edge remains.

Dense graphs need many classes (``K_{s,s}`` needs ``s^2``: every
induced matching in a complete bipartite graph is a single edge), while
RS graphs need few -- the contrast at the heart of ``RS(n)``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

__all__ = [
    "greedy_induced_matching",
    "greedy_induced_partition",
    "strong_edge_classes_upper_bound",
]

Edge = Tuple[int, int]


def greedy_induced_matching(edges: Sequence[Edge]) -> List[Edge]:
    """A maximal induced matching of the bipartite edge set, greedily.

    Scans edges in order; an edge joins the matching when neither
    endpoint is matched *and* it creates no cross edge against the
    current matching (checked against the full edge set).
    """
    edge_set = set(edges)
    matched_left: Set[int] = set()
    matched_right: Set[int] = set()
    matching: List[Edge] = []
    for u, v in edges:
        if u in matched_left or v in matched_right:
            continue
        # Cross-edge test: u against matched rights, v against lefts.
        if any((u, r) in edge_set for r in matched_right):
            continue
        if any((l, v) in edge_set for l in matched_left):
            continue
        matching.append((u, v))
        matched_left.add(u)
        matched_right.add(v)
    return matching


def greedy_induced_partition(
    edges: Iterable[Edge],
) -> List[List[Edge]]:
    """Partition the edges into induced matchings, greedily.

    Each class is induced with respect to the *whole* graph (Definition
    1.2 -- the matching must be an induced subgraph of G, not of the
    leftover), verified by construction and re-checked by the tests.
    """
    all_edges = list(dict.fromkeys(edges))
    full_set = set(all_edges)
    remaining = list(all_edges)
    classes: List[List[Edge]] = []
    while remaining:
        edge_order = list(remaining)
        matched_left: Set[int] = set()
        matched_right: Set[int] = set()
        matching: List[Edge] = []
        for u, v in edge_order:
            if u in matched_left or v in matched_right:
                continue
            if any((u, r) in full_set for r in matched_right):
                continue
            if any((l, v) in full_set for l in matched_left):
                continue
            matching.append((u, v))
            matched_left.add(u)
            matched_right.add(v)
        if not matching:
            # Guaranteed progress: a single edge is always induced.
            matching = [remaining[0]]
        chosen = set(matching)
        remaining = [e for e in remaining if e not in chosen]
        classes.append(matching)
    return classes


def strong_edge_classes_upper_bound(edges: Sequence[Edge]) -> int:
    """The number of classes the greedy partition uses."""
    return len(greedy_induced_partition(edges))
