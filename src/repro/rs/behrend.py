"""Progression-free sets: Behrend's construction and a greedy baseline.

Behrend (1946) showed that ``[N]`` contains a subset of size
``N / 2^{O(sqrt(log N))}`` with no 3-term arithmetic progression; this is
what makes the Ruzsa-Szemeredi function satisfy
``RS(n) <= 2^{O(sqrt(log n))}`` -- the upper bound quoted throughout the
paper, and exactly the ``2^{Theta(sqrt(log n))}`` shape of the paper's
hub-labeling lower bound.

The construction embeds ``[N]`` into a ``d``-dimensional grid (digits in
base ``2n - 1`` so sums never carry) and keeps a sphere ``|x|^2 = k``:
if ``a + b = 2c`` then the digit vectors satisfy ``x_a + x_b = 2 x_c``
and, lying on a common sphere, must be equal -- so the only progressions
are trivial.  The best radius ``k`` is found by counting.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import product
from typing import Dict, List, Sequence

__all__ = [
    "behrend_set",
    "greedy_progression_free",
    "is_progression_free",
    "stanley_sequence",
]


def is_progression_free(values: Sequence[int]) -> bool:
    """True iff ``values`` contains no non-trivial 3-term AP.

    A 3-term AP here is ``a + b = 2c`` with ``a != b`` and all three in
    the set; O(|S|^2) with hashing.
    """
    members = set(values)
    items = sorted(members)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if (a + b) % 2 == 0 and (a + b) // 2 in members:
                return False
    return True


def _behrend_for_dimension(limit: int, dimension: int) -> List[int]:
    """Behrend's sphere construction in a fixed dimension.

    Digits range over ``[0, n-1]`` with base ``2n - 1`` (so digitwise sums
    never carry); returns the largest sphere, mapped back to integers
    ``< limit``.
    """
    if limit <= 2:
        return list(range(limit))
    base_root = int(round(limit ** (1.0 / dimension)))
    # Largest n with (2n - 1)^d <= limit.
    n = (base_root + 1) // 2 + 2
    while n >= 2 and (2 * n - 1) ** dimension > limit:
        n -= 1
    if n < 2:
        return [0]
    base = 2 * n - 1
    spheres: Dict[int, List[int]] = defaultdict(list)
    for digits in product(range(n), repeat=dimension):
        norm = sum(d * d for d in digits)
        value = 0
        for d in reversed(digits):
            value = value * base + d
        spheres[norm].append(value)
    best = max(spheres.values(), key=len)
    return sorted(v for v in best if v < limit)


def behrend_set(limit: int, *, max_dimension: int = 8) -> List[int]:
    """A large 3-AP-free subset of ``[0, limit)``.

    Tries every dimension up to ``max_dimension`` and keeps the largest
    sphere found.  The result is sorted and verified AP-free shapes by
    construction (tests re-verify exhaustively).
    """
    if limit <= 0:
        return []
    if limit <= 3:
        # {0, 1} and {0, 1, 2}... note {0,1,2} is an AP; keep {0, 1}.
        return list(range(min(limit, 2)))
    best: List[int] = [0]
    for dimension in range(1, max_dimension + 1):
        candidate = _behrend_for_dimension(limit, dimension)
        if len(candidate) > len(best):
            best = candidate
    if limit <= 20000:
        # At laptop scales the greedy (Stanley) set often beats the sphere
        # construction's constants; keep whichever is larger -- the result
        # is AP-free either way, and "large" is all downstream code needs.
        greedy = greedy_progression_free(limit)
        if len(greedy) > len(best):
            best = greedy
    return best


def greedy_progression_free(limit: int) -> List[int]:
    """The lexicographically greedy 3-AP-free subset of ``[0, limit)``.

    Equals the Stanley sequence: integers whose base-3 representation
    avoids the digit 2.  Size ``~ limit^{log_3 2}`` -- much smaller than
    Behrend for large ``limit``, which the RS benchmarks exhibit.
    """
    chosen: List[int] = []
    members = set()
    for candidate in range(limit):
        ok = True
        for a in chosen:
            # candidate as endpoint with midpoint already present:
            if (a + candidate) % 2 == 0 and (a + candidate) // 2 in members:
                ok = False
                break
            # candidate as endpoint with ``a`` as the midpoint:
            if 2 * a - candidate in members:
                ok = False
                break
            # candidate as the midpoint of two present endpoints:
            if 2 * candidate - a in members and a != candidate:
                ok = False
                break
        if ok:
            chosen.append(candidate)
            members.add(candidate)
    return chosen


def stanley_sequence(limit: int) -> List[int]:
    """Integers in ``[0, limit)`` with no digit 2 in base 3."""
    result = []
    for value in range(limit):
        v = value
        while v:
            if v % 3 == 2:
                break
            v //= 3
        else:
            result.append(value)
    return result
