"""Resilient oracle runtime: fail loudly or degrade exactly, never lie.

The paper's object is a labeling answering *exact* distance queries; in
a serving system the labeling artifact -- not the graph -- is what gets
shipped, cached, and (eventually) corrupted.  This package is the
defensive layer around that artifact:

* :mod:`repro.runtime.errors`    -- the typed error taxonomy
  (:class:`ReproError` and friends) adopted by serialization,
  verification, and the CLI;
* :mod:`repro.runtime.resilient` -- :class:`ResilientOracle`, a
  hub-label oracle with admission verification, per-query budgets,
  quarantine, and exact bidirectional-search fallback, plus its
  :class:`HealthReport`;
* :mod:`repro.runtime.faults`    -- deterministic fault injection
  (bit-flips, truncation, dropped hubs, perturbed distances) and the
  :func:`chaos_sweep` harness grading the whole stack.

See ``docs/robustness.md`` for the end-to-end story.
"""

from .errors import (
    ArtifactCorruptError,
    DomainError,
    FormatError,
    IntegrityError,
    QueryBudgetExceeded,
    ReproError,
    ServerOverloadError,
)
from .resilient import HealthReport, ResilientOracle
from .faults import (
    FAULT_KINDS,
    ChaosOutcome,
    ChaosReport,
    FaultInjector,
    chaos_sweep,
)

__all__ = [
    "ReproError",
    "ArtifactCorruptError",
    "FormatError",
    "IntegrityError",
    "QueryBudgetExceeded",
    "DomainError",
    "ServerOverloadError",
    "ResilientOracle",
    "HealthReport",
    "FAULT_KINDS",
    "FaultInjector",
    "ChaosOutcome",
    "ChaosReport",
    "chaos_sweep",
]
