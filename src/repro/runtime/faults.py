"""Deterministic fault injection for chaos-testing the oracle runtime.

Four fault families, mirroring how labeling artifacts actually break:

* ``bit-flip``  -- flip random bits of the serialized artifact (storage
  or transport corruption);
* ``truncate``  -- cut the serialized artifact short (interrupted
  writes, partial downloads);
* ``drop-hub``  -- delete random hub entries from the in-memory
  labeling (builder bugs, partial construction);
* ``perturb``   -- shift random stored hub distances (stale artifacts,
  unit mixups).

Everything is seeded: the same ``(seed, kind, trial)`` triple always
produces the same corruption, so a chaos failure is a reproducible test
case, not a flake.  :func:`chaos_sweep` drives the full loop -- corrupt,
load through the envelope, serve through
:class:`~repro.runtime.resilient.ResilientOracle`, compare every answer
against ground truth -- and reports, per fault, whether it was detected
at load time, degraded to exact fallback, or (the one unacceptable
outcome) silently answered wrong.  ``python -m repro.cli chaos`` and
``tests/test_failure_injection.py`` both run it.  Outcomes are also
mirrored into per-kind ``chaos.*`` counters on the active metrics
registry (``chaos.wrong_answers`` is the one that must stay 0).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.hublabel import HubLabeling
from ..graphs.graph import Graph
from ..graphs.traversal import shortest_path_distances
from ..obs.catalog import (
    CHAOS_DETECTED_AT_LOAD,
    CHAOS_FALLBACKS,
    CHAOS_INJECTIONS,
    CHAOS_WRONG_ANSWERS,
)
from ..obs.registry import get_registry
from .errors import ReproError
from .resilient import ResilientOracle

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "ChaosOutcome",
    "ChaosReport",
    "chaos_sweep",
]

#: The supported fault families, in canonical order.
FAULT_KINDS = ("bit-flip", "truncate", "drop-hub", "perturb")

#: Fault kinds applied to serialized bytes (vs the in-memory labeling).
BYTE_FAULTS = ("bit-flip", "truncate")


class FaultInjector:
    """Seeded corruption of labelings and their serialized artifacts.

    ``seed`` is anything :class:`random.Random` accepts (the chaos sweep
    passes ``"seed:kind:trial"`` strings, which hash deterministically).
    """

    def __init__(self, seed=0) -> None:
        self._rng = random.Random(seed)

    # -- byte-level -----------------------------------------------------
    def bit_flip(self, blob: bytes, *, flips: int = 1) -> bytes:
        """Flip ``flips`` random bits anywhere in ``blob``."""
        if not blob:
            return blob
        mangled = bytearray(blob)
        for _ in range(max(1, flips)):
            position = self._rng.randrange(len(mangled) * 8)
            mangled[position // 8] ^= 1 << (position % 8)
        return bytes(mangled)

    def truncate(self, blob: bytes) -> bytes:
        """Cut ``blob`` to a random strictly-shorter prefix."""
        if len(blob) <= 1:
            return b""
        return blob[: self._rng.randrange(len(blob))]

    # -- label-level ----------------------------------------------------
    def drop_hubs(self, labeling: HubLabeling, *, count: int = 1) -> HubLabeling:
        """A copy of ``labeling`` with up to ``count`` hub entries removed."""
        mangled = labeling.copy()
        entries = [
            (v, hub)
            for v in range(labeling.num_vertices)
            for hub in labeling.hubs(v)
        ]
        if not entries:
            return mangled
        for v, hub in self._rng.sample(entries, min(count, len(entries))):
            mangled.discard_hub(v, hub)
        return mangled

    def perturb_distances(
        self, labeling: HubLabeling, *, count: int = 1, max_shift: int = 3
    ) -> HubLabeling:
        """A copy with up to ``count`` hub distances shifted by ±1..max_shift."""
        mangled = labeling.copy()
        entries = [
            (v, hub, dist)
            for v in range(labeling.num_vertices)
            for hub, dist in labeling.hubs(v).items()
        ]
        if not entries:
            return mangled
        for v, hub, dist in self._rng.sample(
            entries, min(count, len(entries))
        ):
            shift = self._rng.choice((-1, 1)) * self._rng.randint(1, max_shift)
            mangled.discard_hub(v, hub)
            mangled.add_hub(v, hub, max(0, int(dist) + shift))
        return mangled

    def corrupt_blob(self, kind: str, blob: bytes) -> bytes:
        if kind == "bit-flip":
            return self.bit_flip(blob, flips=self._rng.randint(1, 4))
        if kind == "truncate":
            return self.truncate(blob)
        raise ValueError(f"{kind!r} is not a byte-level fault")

    def corrupt_labeling(self, kind: str, labeling: HubLabeling) -> HubLabeling:
        if kind == "drop-hub":
            return self.drop_hubs(labeling, count=self._rng.randint(1, 8))
        if kind == "perturb":
            return self.perturb_distances(
                labeling, count=self._rng.randint(1, 8)
            )
        raise ValueError(f"{kind!r} is not a label-level fault")


@dataclass(frozen=True)
class ChaosOutcome:
    """One injected fault and how the runtime coped with it."""

    kind: str
    trial: int
    detected_at_load: bool
    queries: int = 0
    label_answers: int = 0
    fallbacks: int = 0
    wrong: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.wrong == 0


@dataclass
class ChaosReport:
    """Aggregate of a chaos sweep; ``ok`` iff nothing answered wrong."""

    outcomes: List[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def num_injections(self) -> int:
        return len(self.outcomes)

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        summary: Dict[str, Dict[str, int]] = {}
        for outcome in self.outcomes:
            row = summary.setdefault(
                outcome.kind,
                {
                    "injections": 0,
                    "detected_at_load": 0,
                    "queries": 0,
                    "fallbacks": 0,
                    "wrong": 0,
                },
            )
            row["injections"] += 1
            row["detected_at_load"] += int(outcome.detected_at_load)
            row["queries"] += outcome.queries
            row["fallbacks"] += outcome.fallbacks
            row["wrong"] += outcome.wrong
        return summary

    def render(self) -> str:
        header = (
            f"{'fault':<10} {'inject':>6} {'at-load':>7} "
            f"{'queries':>7} {'fallback':>8} {'wrong':>5}"
        )
        lines = [header, "-" * len(header)]
        for kind in sorted(self.by_kind()):
            row = self.by_kind()[kind]
            lines.append(
                f"{kind:<10} {row['injections']:>6} "
                f"{row['detected_at_load']:>7} {row['queries']:>7} "
                f"{row['fallbacks']:>8} {row['wrong']:>5}"
            )
        verdict = "OK (zero wrong answers)" if self.ok else "FAILED"
        lines.append(f"total injections: {self.num_injections} -> {verdict}")
        return "\n".join(lines)


def _ground_truth(graph: Graph) -> List[List[float]]:
    return [
        shortest_path_distances(graph, source)[0]
        for source in graph.vertices()
    ]


def chaos_sweep(
    graph: Graph,
    labeling: HubLabeling,
    *,
    kinds: Sequence[str] = FAULT_KINDS,
    trials_per_kind: int = 50,
    queries_per_trial: int = 10,
    seed: int = 0,
    backend: str = "dict",
) -> ChaosReport:
    """Inject ``trials_per_kind`` faults of each kind and grade the runtime.

    ``backend`` selects the serving store of the graded
    :class:`ResilientOracle` (``"flat"`` exercises the
    :class:`~repro.perf.flat.FlatHubLabeling` path); the grades must be
    identical for both backends -- the flat store changes layout, not
    answers.

    Byte-level faults are applied to the enveloped serialization and must
    be caught at load.  Label-level faults are admitted through a *full*
    verification gate (``verify_sample = n``), which quarantines every
    violating endpoint, so each graded query is answered either by
    still-correct labels or by exact fallback.  Any silently-wrong answer
    is recorded (and fails :attr:`ChaosReport.ok`).
    """
    from ..core.io import labeling_to_bytes, labeling_from_bytes

    unknown = set(kinds) - set(FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kind(s): {sorted(unknown)}")
    truth = _ground_truth(graph)
    blob = labeling_to_bytes(labeling)
    n = graph.num_vertices
    report = ChaosReport()
    registry = get_registry()

    def record(outcome: ChaosOutcome) -> None:
        # Appends to the report and mirrors it into per-kind counters
        # (all four counters are created even while still zero, so the
        # exposition shows `chaos.wrong_answers = 0` rather than
        # nothing at all on a healthy run).
        report.outcomes.append(outcome)
        if not registry.enabled:
            return
        kind = outcome.kind
        registry.counter(CHAOS_INJECTIONS, kind=kind).inc()
        registry.counter(CHAOS_DETECTED_AT_LOAD, kind=kind).inc(
            int(outcome.detected_at_load)
        )
        registry.counter(CHAOS_FALLBACKS, kind=kind).inc(outcome.fallbacks)
        registry.counter(CHAOS_WRONG_ANSWERS, kind=kind).inc(outcome.wrong)

    for kind in kinds:
        for trial in range(trials_per_kind):
            injector = FaultInjector(seed=f"{seed}:{kind}:{trial}")
            pair_rng = random.Random(f"{seed}:pairs:{kind}:{trial}")
            if kind in BYTE_FAULTS:
                mangled_blob = injector.corrupt_blob(kind, blob)
                try:
                    mangled = labeling_from_bytes(mangled_blob)
                except ReproError as exc:
                    record(
                        ChaosOutcome(
                            kind=kind,
                            trial=trial,
                            detected_at_load=True,
                            error=type(exc).__name__,
                        )
                    )
                    continue
                # Astronomically unlikely (CRC collision); grade whatever
                # decoded rather than hiding it.
                detected = False
            else:
                mangled = injector.corrupt_labeling(kind, labeling)
                detected = False
            if mangled.num_vertices != n:
                record(
                    ChaosOutcome(kind=kind, trial=trial, detected_at_load=True)
                )
                continue
            oracle = ResilientOracle(
                graph,
                mangled,
                fallback=True,
                verify_sample=n,  # exhaustive admission: see docstring
                seed=trial,
                backend=backend,
            )
            detected = detected or not oracle.health.healthy
            queries = label_answers = fallbacks = wrong = 0
            for _ in range(queries_per_trial):
                u = pair_rng.randrange(n)
                v = pair_rng.randrange(n)
                before = oracle.health.fallbacks
                outcome = oracle.query(u, v)
                queries += 1
                if oracle.health.fallbacks > before:
                    fallbacks += 1
                else:
                    label_answers += 1
                if outcome.distance != truth[u][v]:
                    wrong += 1
            record(
                ChaosOutcome(
                    kind=kind,
                    trial=trial,
                    detected_at_load=detected,
                    queries=queries,
                    label_answers=label_answers,
                    fallbacks=fallbacks,
                    wrong=wrong,
                )
            )
    return report
