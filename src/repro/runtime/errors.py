"""Typed error taxonomy for the resilient oracle runtime.

Every failure the library can diagnose maps to one subclass of
:class:`ReproError`, so callers (and the CLI) can distinguish *what went
wrong* without parsing message strings:

* :class:`ArtifactCorruptError` -- a serialized artifact (labeling blob,
  envelope) is truncated, bit-flipped, or structurally invalid; carries
  the byte/bit offset where decoding failed;
* :class:`FormatError` -- malformed textual input (edge lists, headers);
  carries the offending line number;
* :class:`IntegrityError` -- an artifact parsed cleanly but fails a
  semantic check (cover verification, vertex-count mismatch against a
  graph);
* :class:`QueryBudgetExceeded` -- a query would exceed its per-query
  operation budget;
* :class:`DomainError` -- arguments outside the structure's domain
  (vertex ids out of range, bad parameters);
* :class:`ServerOverloadError` -- the serving layer's bounded admission
  queue is full and the request was rejected (backpressure, not a
  crash; carries the queue capacity so clients can size their retry).

The classes that signal *bad data or bad arguments* also subclass
:class:`ValueError` so pre-taxonomy call sites (``except ValueError``)
keep working.  Each class carries a distinct ``exit_code`` (sysexits
style, all >= 64 to stay clear of argparse's 2) which the CLI uses as
its process exit status.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ArtifactCorruptError",
    "FormatError",
    "IntegrityError",
    "QueryBudgetExceeded",
    "DomainError",
    "ServerOverloadError",
]


class ReproError(Exception):
    """Root of the library's typed error taxonomy."""

    #: Process exit status the CLI maps this error to.
    exit_code = 64

    def diagnostic(self) -> str:
        """A one-line ``kind: detail`` rendering for stderr."""
        return f"{type(self).__name__}: {self}"


class ArtifactCorruptError(ReproError, ValueError):
    """A serialized artifact is damaged (truncated, flipped, garbage).

    ``offset`` locates the failure in the input when known; ``unit`` says
    whether it counts bytes or bits.
    """

    exit_code = 65

    def __init__(
        self,
        message: str,
        *,
        offset: Optional[int] = None,
        unit: str = "bytes",
    ) -> None:
        if offset is not None:
            message = f"{message} (at {unit[:-1]} offset {offset})"
        super().__init__(message)
        self.offset = offset
        self.unit = unit


class FormatError(ReproError, ValueError):
    """Malformed textual input; ``line`` is the 1-based offending line."""

    exit_code = 66

    def __init__(self, message: str, *, line: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class IntegrityError(ReproError):
    """An artifact parsed cleanly but fails a semantic consistency check."""

    exit_code = 67


class QueryBudgetExceeded(ReproError):
    """A query's operation cost would exceed the configured budget."""

    exit_code = 68

    def __init__(self, message: str, *, cost: int = 0, budget: int = 0) -> None:
        super().__init__(message)
        self.cost = cost
        self.budget = budget


class DomainError(ReproError, ValueError):
    """Arguments outside the structure's domain (bad vertex ids etc.)."""

    exit_code = 69


class ServerOverloadError(ReproError):
    """The query server's admission queue is full; the request was
    rejected so the caller can back off and retry (backpressure)."""

    exit_code = 70

    def __init__(
        self, message: str, *, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None:
            message = f"{message} (queue capacity {capacity})"
        super().__init__(message)
        self.capacity = capacity
