"""Graceful degradation: a hub-label oracle that never answers wrong.

:class:`ResilientOracle` wraps :class:`~repro.oracles.oracle.HubLabelOracle`
with the defenses a production serving path needs when the labeling
artifact -- not the graph -- is what got shipped:

* **admission check** -- at construction, a (sampled or full) cover
  verification runs against the graph; vertices involved in any
  violation are *quarantined*;
* **per-query budget** -- a query whose label-intersection cost would
  exceed ``operation_budget`` is not served from labels;
* **exact fallback** -- quarantined endpoints, budget overruns, and
  label answers claiming disconnection are re-answered by exact
  bidirectional search on the graph
  (:func:`~repro.graphs.traversal.bidirectional_distance`), so the
  response is still the true distance, just slower;
* **health accounting** -- every degradation event increments a counter
  on the oracle's :class:`HealthReport`.

With ``fallback=False`` the same conditions raise typed errors
(:class:`~repro.runtime.errors.IntegrityError`,
:class:`~repro.runtime.errors.QueryBudgetExceeded`) instead of
degrading.  Either way a query never silently returns a distance the
labels cannot certify.

The admission check is exhaustive when ``verify_sample >= n`` (then a
wrong pair is *guaranteed* to be quarantined -- the chaos suite relies
on this) and probabilistic below that (cheaper; corruption outside the
sampled rows can slip through to label answers).

Every :class:`HealthReport` event is mirrored into ``resilient.*``
counters (and a quarantine-size gauge) on the active metrics registry
-- see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.hublabel import HubLabeling
from ..graphs.graph import Graph
from ..graphs.traversal import INF, bidirectional_distance
from ..obs.catalog import (
    RESILIENT_ADMISSION_VIOLATIONS,
    RESILIENT_BUDGET_EXHAUSTIONS,
    RESILIENT_FALLBACKS,
    RESILIENT_INTEGRITY_FAILURES,
    RESILIENT_LABEL_ANSWERS,
    RESILIENT_QUARANTINED_VERTICES,
    RESILIENT_QUERIES,
)
from ..obs.registry import get_registry as _get_registry
from ..oracles.oracle import HubLabelOracle, QueryOutcome
from .errors import DomainError, IntegrityError, QueryBudgetExceeded

__all__ = ["HealthReport", "ResilientOracle"]


class _ResilientInstruments:
    """The degradation counters, pre-bound against one registry."""

    __slots__ = (
        "queries",
        "label_answers",
        "fallbacks",
        "budget_exhaustions",
        "integrity_failures",
        "admission_violations",
        "quarantined",
    )

    def __init__(self, registry) -> None:
        self.queries = registry.counter(RESILIENT_QUERIES)
        self.label_answers = registry.counter(RESILIENT_LABEL_ANSWERS)
        self.fallbacks = registry.counter(RESILIENT_FALLBACKS)
        self.budget_exhaustions = registry.counter(
            RESILIENT_BUDGET_EXHAUSTIONS
        )
        self.integrity_failures = registry.counter(
            RESILIENT_INTEGRITY_FAILURES
        )
        self.admission_violations = registry.counter(
            RESILIENT_ADMISSION_VIOLATIONS
        )
        self.quarantined = registry.gauge(RESILIENT_QUARANTINED_VERTICES)


@dataclass
class HealthReport:
    """Counters describing how an oracle has been degrading."""

    queries: int = 0
    label_answers: int = 0
    fallbacks: int = 0
    integrity_failures: int = 0
    budget_exhaustions: int = 0
    admission_violations: int = 0
    quarantined: Set[int] = field(default_factory=set)

    @property
    def healthy(self) -> bool:
        """True while no degradation event has been recorded."""
        return (
            self.integrity_failures == 0
            and self.budget_exhaustions == 0
            and self.admission_violations == 0
            and not self.quarantined
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "label_answers": self.label_answers,
            "fallbacks": self.fallbacks,
            "integrity_failures": self.integrity_failures,
            "budget_exhaustions": self.budget_exhaustions,
            "admission_violations": self.admission_violations,
            "quarantined_vertices": len(self.quarantined),
        }

    def __repr__(self) -> str:
        status = "healthy" if self.healthy else "degraded"
        return (
            f"HealthReport({status}, queries={self.queries}, "
            f"fallbacks={self.fallbacks}, "
            f"quarantined={len(self.quarantined)})"
        )


class ResilientOracle:
    """An exact oracle over untrusted labels, with exact-BFS fallback."""

    name = "resilient-hub-label"

    def __init__(
        self,
        graph: Graph,
        labeling: HubLabeling,
        *,
        fallback: bool = True,
        verify_sample: int = 0,
        operation_budget: Optional[int] = None,
        seed: int = 0,
        backend: str = "dict",
    ) -> None:
        if labeling.num_vertices != graph.num_vertices:
            raise IntegrityError(
                f"labeling covers {labeling.num_vertices} vertices but the "
                f"graph has {graph.num_vertices}"
            )
        if operation_budget is not None and operation_budget < 1:
            raise DomainError("operation_budget must be positive")
        self._graph = graph
        # ``backend`` picks the serving store (see HubLabelOracle); the
        # admission gate always verifies the labeling it was handed.
        self._oracle = HubLabelOracle(labeling, backend=backend)
        self._labeling = labeling
        self._fallback = fallback
        self._budget = operation_budget
        self.health = HealthReport()
        self._obs_registry = None
        self._obs: Optional[_ResilientInstruments] = None
        if verify_sample > 0:
            self._admit(verify_sample, seed)

    def _instruments(self) -> Optional[_ResilientInstruments]:
        """Counters bound to the active registry (rebinds after swaps)."""
        registry = _get_registry()
        if registry is not self._obs_registry:
            self._obs_registry = registry
            self._obs = (
                _ResilientInstruments(registry) if registry.enabled else None
            )
        return self._obs

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, verify_sample: int, seed: int) -> None:
        # Imported here: core.verification itself adopts runtime.errors,
        # so a top-level import would be circular during package init.
        from ..core.verification import verify_cover, verify_cover_sampled

        n = self._graph.num_vertices
        if verify_sample >= n:
            report = verify_cover(
                self._graph,
                self._labeling,
                max_violations=n * n,
                include_disconnected=True,
            )
        else:
            report = verify_cover_sampled(
                self._graph,
                self._labeling,
                num_sources=verify_sample,
                seed=seed,
                max_violations=n * n,
                include_disconnected=True,
            )
        if report.ok:
            return
        self.health.admission_violations += len(report.violations)
        obs = self._instruments()
        if obs is not None:
            obs.admission_violations.inc(len(report.violations))
        if not self._fallback:
            raise IntegrityError(
                f"labeling failed admission: {len(report.violations)} "
                f"violating pair(s) out of {report.num_pairs} checked"
            )
        for u, v, _true, _est in report.violations:
            self.health.quarantined.add(u)
            self.health.quarantined.add(v)
        if obs is not None:
            obs.quarantined.set(len(self.health.quarantined))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def space_words(self) -> int:
        return self._oracle.space_words()

    @property
    def labeling(self) -> HubLabeling:
        """The labeling being served (what the admission gate verified)."""
        return self._labeling

    @property
    def quarantined(self) -> Set[int]:
        return set(self.health.quarantined)

    def quarantine(self, vertex: int) -> None:
        """Manually mark a vertex as untrusted (all its queries degrade)."""
        self._check_vertex(vertex)
        self.health.quarantined.add(vertex)
        obs = self._instruments()
        if obs is not None:
            obs.quarantined.set(len(self.health.quarantined))

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._graph.num_vertices:
            raise DomainError(
                f"vertex {vertex} outside 0..{self._graph.num_vertices - 1}"
            )

    def _exact(self, u: int, v: int) -> QueryOutcome:
        self.health.fallbacks += 1
        obs = self._instruments()
        if obs is not None:
            obs.fallbacks.inc()
        distance = bidirectional_distance(self._graph, u, v)
        # The search's cost is not instrumented; charge the conservative
        # proxy n so trade-off accounting never undercounts a fallback.
        return QueryOutcome(
            distance=distance,
            operations=max(1, self._graph.num_vertices),
            source="fallback",
        )

    def query(self, u: int, v: int) -> QueryOutcome:
        """Exact distance for ``(u, v)``: labels when trusted, BFS else."""
        self._check_vertex(u)
        self._check_vertex(v)
        self.health.queries += 1
        obs = self._instruments()
        if obs is not None:
            obs.queries.inc()
        if u == v:
            self.health.label_answers += 1
            if obs is not None:
                obs.label_answers.inc()
            return QueryOutcome(distance=0, operations=1, source="label")
        if u in self.health.quarantined or v in self.health.quarantined:
            if not self._fallback:
                raise IntegrityError(
                    f"endpoint of ({u}, {v}) is quarantined and fallback "
                    "is disabled"
                )
            return self._exact(u, v)
        cost = min(self._labeling.label_size(u), self._labeling.label_size(v))
        if self._budget is not None and cost > self._budget:
            self.health.budget_exhaustions += 1
            if obs is not None:
                obs.budget_exhaustions.inc()
            if not self._fallback:
                raise QueryBudgetExceeded(
                    f"query ({u}, {v}) needs {cost} operations, "
                    f"budget is {self._budget}",
                    cost=cost,
                    budget=self._budget,
                )
            return self._exact(u, v)
        outcome = self._oracle.query(u, v)
        if outcome.distance == INF and self._fallback:
            # Labels claim the pair is disconnected.  An honest labeling
            # is allowed to say so, but a corrupted one uses INF to hide
            # dropped entries -- cross-check before trusting it.
            exact = self._exact(u, v)
            if exact.distance != INF:
                self.health.integrity_failures += 1
                self.health.quarantined.update((u, v))
                if obs is not None:
                    obs.integrity_failures.inc()
                    obs.quarantined.set(len(self.health.quarantined))
            return exact
        self.health.label_answers += 1
        if obs is not None:
            obs.label_answers.inc()
        return QueryOutcome(
            distance=outcome.distance,
            operations=outcome.operations,
            source="label",
        )

    def batch_query(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Exact distances for many pairs, degradation semantics intact.

        Pairs needing special handling (identical endpoints, a
        quarantined endpoint, a budget overrun) go through the scalar
        :meth:`query` path with its full accounting; the rest are
        answered by the backend's batch engine in one shot, with the
        same INF cross-check as the scalar path.  Returns distances
        only (per-query operation counts are what batching amortizes
        away); health counters are updated for every pair.
        """
        for u, v in pairs:
            self._check_vertex(u)
            self._check_vertex(v)
        results: List[Optional[float]] = [None] * len(pairs)
        quarantined = self.health.quarantined
        budget = self._budget
        label_size = self._labeling.label_size
        trusted: List[int] = []
        for index, (u, v) in enumerate(pairs):
            degraded = (
                u == v
                or u in quarantined
                or v in quarantined
                or (
                    budget is not None
                    and min(label_size(u), label_size(v)) > budget
                )
            )
            if degraded:
                results[index] = self.query(u, v).distance
            else:
                trusted.append(index)
        if trusted:
            answers = self._oracle.batch_query(
                [pairs[index] for index in trusted]
            )
            self.health.queries += len(trusted)
            obs = self._instruments()
            if obs is not None:
                obs.queries.inc(len(trusted))
            for index, distance in zip(trusted, answers):
                if distance == INF and self._fallback:
                    u, v = pairs[index]
                    exact = self._exact(u, v)
                    if exact.distance != INF:
                        self.health.integrity_failures += 1
                        self.health.quarantined.update((u, v))
                        if obs is not None:
                            obs.integrity_failures.inc()
                            obs.quarantined.set(
                                len(self.health.quarantined)
                            )
                    results[index] = exact.distance
                else:
                    self.health.label_answers += 1
                    if obs is not None:
                        obs.label_answers.inc()
                    results[index] = distance
        return results

    def __repr__(self) -> str:
        return (
            f"ResilientOracle(n={self._graph.num_vertices}, "
            f"fallback={self._fallback}, budget={self._budget}, "
            f"{self.health!r})"
        )
