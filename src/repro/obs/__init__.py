"""Observability: metrics registry, tracing spans, and exporters.

The serving stack (oracles, resilient runtime, constructions, chaos
sweep, benchmarks) reports counters, gauges, latency histograms, and
nested wall-time spans into a process-global -- but swappable --
:class:`Registry`.  ``python -m repro stats`` renders the result as a
table, JSON, or Prometheus text exposition; ``--metrics-out FILE`` on
``query`` / ``bench`` / ``chaos`` dumps a snapshot for later viewing.

Everything is dependency-free and cheap enough for the scalar query hot
path (the bench suite gates the dict-backend overhead at <= 10%); see
``docs/observability.md`` for the metric catalogue and the design notes.
"""

from .catalog import CATALOG, MetricSpec, catalog_names
from .export import (
    load_snapshot,
    render_prometheus,
    render_table,
    snapshot_names,
    write_snapshot,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import Span, current_span, span

__all__ = [
    "CATALOG",
    "MetricSpec",
    "catalog_names",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "render_table",
    "render_prometheus",
    "write_snapshot",
    "load_snapshot",
    "snapshot_names",
]
