"""The metrics registry: counters, gauges, and latency histograms.

Dependency-free observability primitives for the oracle runtime.  The
design follows the usual exposition model (Prometheus-style counters /
gauges / fixed-bucket histograms) but stays deliberately tiny so the
instrumented hot paths -- :meth:`repro.oracles.oracle.HubLabelOracle.query`
above all -- pay nanoseconds, not microseconds:

* instruments are plain objects with a ``value`` attribute (counters,
  gauges) or a short bucket array (histograms); increments are attribute
  writes, not method-call chains;
* the registry interns instruments by ``(name, labels)`` so callers can
  cache the returned object and skip the lookup on every event;
* everything hangs off a process-global but *swappable*
  :func:`get_registry` handle, so tests isolate themselves by swapping
  in a fresh :class:`Registry` (see :func:`use_registry` and the autouse
  fixture in ``tests/conftest.py``).

Thread-safety: a plain ``counter.value += 1`` is a read-modify-write
that the GIL does *not* make atomic, so every mutation path is safe by
construction instead.  :class:`Counter` shards its count per thread
(lock-free striped cells; :meth:`Counter.inc` is exact under any
concurrency, and hot paths can inline a cell bump -- see the class
docstring); :class:`Gauge` and :class:`Histogram` mutate under a
per-instrument lock.  Direct attribute writes (``counter.value = 7``)
remain legal only on paths that are single-threaded by construction.
Instrument *creation* takes the registry lock.  Process pools do not
share a registry -- workers observe into their own (empty) one.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from math import ceil, inf
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Bucket upper edges (seconds) for latency histograms: 1-2.5-5 decades
#: from a microsecond to ten seconds, which brackets every query and
#: build phase in this codebase.  The implicit final bucket is +inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count, exact under concurrency.

    The count is sharded per thread: every thread owns one mutable
    *cell* (a one-element list) and bumps only that, so concurrent
    :meth:`inc` calls never race on shared state and never need a lock
    -- the classic striped-counter design, at Python speed.  Reading
    :attr:`value` sums the cells; after writer threads are joined the
    sum is exact (mid-flight it is a consistent monotone approximation).

    Hot paths that bump the same counter millions of times can skip the
    method-call overhead entirely: fetch the calling thread's cell once
    with :meth:`cell` and do ``cell[0] += 1`` inline -- single-writer,
    still exact, and as cheap as a bare attribute bump.  A cell must
    never be shared across threads.

    Assigning :attr:`value` directly (``counter.value = 7``,
    ``counter.value += 2``) resets the shards and is legal only on
    single-threaded paths -- tests and legacy call sites.
    """

    __slots__ = ("name", "labels", "_cells", "_base")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._cells: Dict[int, List[int]] = {}
        self._base = 0

    def cell(self) -> List[int]:
        """The calling thread's count cell (created on first use)."""
        ident = threading.get_ident()
        found = self._cells.get(ident)
        if found is None:
            # Only this thread inserts this key: no lock needed.
            found = self._cells[ident] = [0]
        return found

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.cell()[0] += amount

    @property
    def value(self) -> int:
        base = self._base
        while True:
            try:
                return base + sum(cell[0] for cell in self._cells.values())
            except RuntimeError:
                # A new thread registered its cell mid-sum; retry (the
                # sum is only exact after writers are joined anyway).
                continue

    @value.setter
    def value(self, total: int) -> None:
        self._cells.clear()
        self._base = total

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (a rate, a set size, ...).

    ``set`` / ``inc`` / ``dec`` are atomic; see :class:`Counter`.
    """

    __slots__ = ("name", "labels", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    ``buckets`` are the finite upper edges, ascending; an implicit
    ``+inf`` bucket catches the overflow.  An observation ``x`` lands in
    the first bucket with ``x <= edge`` (edges are inclusive upper
    bounds, the Prometheus ``le`` convention -- an observation exactly
    on an edge belongs to that edge's bucket).

    Quantiles (:meth:`percentile`) are estimated by linear interpolation
    inside the owning bucket and clamped to the exact observed
    ``[min, max]``, so they are never wilder than the data.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "min", "max", "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly ascending")
        self.name = name
        self.labels = labels
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # last one is +inf
        self.count = 0
        self.sum = 0.0
        self.min = inf
        self.max = -inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # One lock guards the five correlated fields: concurrent
        # observers must never leave count and counts disagreeing.
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, p: float) -> Optional[float]:
        """The estimated ``p``-quantile (``p`` in ``[0, 1]``), or None."""
        if not 0 <= p <= 1:
            raise ValueError("p must be within [0, 1]")
        if self.count == 0:
            return None
        rank = max(1, ceil(p * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = self.buckets[index - 1] if index > 0 else self.min
                high = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.max
                )
                low = max(low, self.min)
                high = min(high, self.max)
                if high <= low:
                    return low
                fraction = (rank - cumulative) / bucket_count
                return low + fraction * (high - low)
            cumulative += bucket_count
        return self.max  # unreachable unless counts drifted

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> Dict[str, object]:
        edges: List[Optional[float]] = list(self.buckets) + [None]
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                [edge, count] for edge, count in zip(edges, self.counts)
            ],
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class Registry:
    """Interns instruments by ``(name, sorted labels)`` and snapshots them.

    ``enabled`` is True for real registries; instrumented code checks it
    once when (re)binding its cached instruments and skips all metric
    work when serving under a :class:`NullRegistry`.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._lock = threading.Lock()
        self._traces: List[Tuple[str, int, float]] = []

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create)
    # ------------------------------------------------------------------
    def _intern(self, cls, name: str, labels: Dict[str, str], *args):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = cls(name, key[1], *args)
                    self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._intern(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._intern(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        histogram = self._intern(Histogram, name, labels, buckets)
        if histogram.buckets != tuple(float(edge) for edge in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                "bucket edges"
            )
        return histogram

    # ------------------------------------------------------------------
    # Trace log (completed spans; see repro.obs.spans)
    # ------------------------------------------------------------------
    #: Completed spans kept per registry; old entries rotate out so a
    #: long-lived process cannot grow without bound.
    MAX_TRACES = 4096

    def record_trace(self, path: str, depth: int, duration: float) -> None:
        # Spans complete on whatever thread ran them; the rotation is a
        # read-modify-write, so it shares the registry lock.
        with self._lock:
            traces = self._traces
            traces.append((path, depth, duration))
            if len(traces) > self.MAX_TRACES:
                del traces[: len(traces) - self.MAX_TRACES]

    def traces(self) -> List[Tuple[str, int, float]]:
        """Completed spans as ``(path, depth, duration)``, oldest first."""
        with self._lock:
            return list(self._traces)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> List[object]:
        """Every registered instrument, sorted by (name, labels)."""
        return [
            self._instruments[key] for key in sorted(self._instruments)
        ]

    def metric_names(self) -> List[str]:
        return sorted({name for name, _ in self._instruments})

    def get(self, name: str, **labels: str):
        """The instrument registered under ``(name, labels)``, or None."""
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable view of every instrument (schema v1)."""
        return {
            "version": 1,
            "metrics": [
                instrument.snapshot() for instrument in self.metrics()
            ],
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(instruments={len(self)})"


class NullRegistry(Registry):
    """A disabled registry: instrumented code sees ``enabled == False``
    and skips metric work entirely (the bench overhead suite serves its
    uninstrumented side under one).  Instruments can still be created --
    they just never reach an exporter by default."""

    enabled = False


_active: Registry = Registry()
_swap_lock = threading.Lock()


def get_registry() -> Registry:
    """The process-global registry every instrumented path reports to."""
    return _active


def set_registry(registry: Registry) -> Registry:
    """Swap the process-global registry; returns the previous one."""
    global _active
    if not isinstance(registry, Registry):
        raise TypeError("set_registry needs a Registry")
    with _swap_lock:
        previous = _active
        _active = registry
    return previous


@contextmanager
def use_registry(registry: Optional[Registry] = None) -> Iterator[Registry]:
    """Temporarily serve metrics into ``registry`` (default: a fresh one).

    The previous global registry is restored on exit even when the body
    raises -- the isolation primitive behind every obs test.
    """
    registry = registry if registry is not None else Registry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
