"""The metric catalogue: every name the instrumentation may emit.

Instrumented code imports its metric names from here instead of using
string literals, so a rename is a one-line change that automatically
propagates -- and anything *not* routed through this module is caught:

* ``tools/check_metrics_schema.py`` (run by CI's bench job and by
  ``tests/test_obs_integration.py``) runs a workload touching every
  subsystem and fails if an emitted metric name is absent from this
  catalogue, or if the catalogue drifts from the committed
  ``docs/metrics_schema.json``;
* ``docs/observability.md`` documents exactly these entries (a docs
  test keeps the two aligned).

``labels`` lists the label *keys* an instrument is emitted with; the
label values are unconstrained (backends, builders, span paths...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["MetricSpec", "CATALOG", "catalog_names"]

# ---------------------------------------------------------------------------
# Metric name constants (the only strings instrumentation sites may use)
# ---------------------------------------------------------------------------
ORACLE_QUERIES = "oracle.queries"
ORACLE_QUERY_LATENCY_SECONDS = "oracle.query_latency_seconds"
ORACLE_BATCHES = "oracle.batches"
ORACLE_BATCH_LATENCY_SECONDS = "oracle.batch_latency_seconds"

RESILIENT_QUERIES = "resilient.queries"
RESILIENT_LABEL_ANSWERS = "resilient.label_answers"
RESILIENT_FALLBACKS = "resilient.fallbacks"
RESILIENT_BUDGET_EXHAUSTIONS = "resilient.budget_exhaustions"
RESILIENT_INTEGRITY_FAILURES = "resilient.integrity_failures"
RESILIENT_ADMISSION_VIOLATIONS = "resilient.admission_violations"
RESILIENT_QUARANTINED_VERTICES = "resilient.quarantined_vertices"

BUILD_LABELS_PER_SECOND = "build.labels_per_second"
BUILD_PAIRS_PER_SECOND = "build.pairs_per_second"
BUILD_DURATION_SECONDS = "build.duration_seconds"
BUILD_BITPARALLEL_PASSES = "build.bitparallel_passes"
BUILD_CACHE_HITS = "build.cache_hits"
BUILD_CACHE_MISSES = "build.cache_misses"
BUILD_CACHE_INVALIDATIONS = "build.cache_invalidations"

CHAOS_INJECTIONS = "chaos.injections"
CHAOS_DETECTED_AT_LOAD = "chaos.detected_at_load"
CHAOS_FALLBACKS = "chaos.fallbacks"
CHAOS_WRONG_ANSWERS = "chaos.wrong_answers"

SERVE_REQUESTS = "serve.requests"
SERVE_REQUEST_LATENCY_SECONDS = "serve.request_latency_seconds"
SERVE_QUEUE_DEPTH = "serve.queue_depth"
SERVE_SHARD_DEPTH = "serve.shard_depth"
SERVE_BATCHES = "serve.batches"
SERVE_BATCH_SUBMISSIONS = "serve.batch_submissions"
SERVE_COALESCE_WIDTH = "serve.coalesce_width"
SERVE_CACHE_HITS = "serve.cache_hits"
SERVE_CACHE_MISSES = "serve.cache_misses"
SERVE_OVERLOADS = "serve.overloads"
SERVE_WORKER_BATCHES = "serve.worker_batches"
SERVE_WORKER_RESTARTS = "serve.worker_restarts"
SERVE_WORKERS_ALIVE = "serve.workers_alive"
SERVE_GENERATION = "serve.generation"

DYNAMIC_INSERTS = "dynamic.inserts"
DYNAMIC_DELETES = "dynamic.deletes"
DYNAMIC_REBUILDS = "dynamic.rebuilds"
DYNAMIC_AFFECTED_ROOTS = "dynamic.affected_roots"
DYNAMIC_LABELS_REPAIRED = "dynamic.labels_repaired"
DYNAMIC_REPAIR_LATENCY_SECONDS = "dynamic.repair_latency_seconds"

SHM_ATTACHES = "shm.attaches"
SHM_BYTES_MAPPED = "shm.bytes_mapped"
SHM_CRC_CHECKS = "shm.crc_checks"

SPAN_DURATION_SECONDS = "span.duration_seconds"
SPAN_COUNT = "span.count"

BENCH_SUITE_DURATION_SECONDS = "bench.suite_duration_seconds"


@dataclass(frozen=True)
class MetricSpec:
    """One catalogued metric: name, instrument type, label keys, firing."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[str, ...]
    fires: str


_SPECS = (
    MetricSpec(
        ORACLE_QUERIES, "counter", ("backend",),
        "per pair answered by HubLabelOracle.query / batch_query",
    ),
    MetricSpec(
        ORACLE_QUERY_LATENCY_SECONDS, "histogram", ("backend",),
        "scalar query wall time, deterministically sampled 1-in-"
        "LATENCY_SAMPLE; batches contribute their per-pair mean once",
    ),
    MetricSpec(
        ORACLE_BATCHES, "counter", ("backend",),
        "per HubLabelOracle.batch_query call",
    ),
    MetricSpec(
        ORACLE_BATCH_LATENCY_SECONDS, "histogram", ("backend",),
        "wall time of each batch_query call",
    ),
    MetricSpec(
        RESILIENT_QUERIES, "counter", (),
        "per ResilientOracle query (batch pairs included)",
    ),
    MetricSpec(
        RESILIENT_LABEL_ANSWERS, "counter", (),
        "per query answered from trusted labels",
    ),
    MetricSpec(
        RESILIENT_FALLBACKS, "counter", (),
        "per query degraded to exact bidirectional search",
    ),
    MetricSpec(
        RESILIENT_BUDGET_EXHAUSTIONS, "counter", (),
        "per query whose label cost exceeded operation_budget",
    ),
    MetricSpec(
        RESILIENT_INTEGRITY_FAILURES, "counter", (),
        "per cross-check catching labels wrongly claiming disconnection",
    ),
    MetricSpec(
        RESILIENT_ADMISSION_VIOLATIONS, "counter", (),
        "per violating pair found by the admission verification gate",
    ),
    MetricSpec(
        RESILIENT_QUARANTINED_VERTICES, "gauge", (),
        "current quarantine size, updated whenever it changes",
    ),
    MetricSpec(
        BUILD_LABELS_PER_SECOND, "gauge", ("builder",),
        "label entries produced per second by the last labeling build "
        "(builder = pll | pll-fast | greedy | flat-bitparallel | "
        "flat-fallback)",
    ),
    MetricSpec(
        BUILD_PAIRS_PER_SECOND, "gauge", ("builder",),
        "vertex pairs classified per second by the last hitting-set "
        "build (builder = hitting-set)",
    ),
    MetricSpec(
        BUILD_DURATION_SECONDS, "gauge", ("builder",),
        "wall time of the last flat-label construction "
        "(builder = bitparallel | fallback)",
    ),
    MetricSpec(
        BUILD_BITPARALLEL_PASSES, "counter", (),
        "per multi-root batch pass of the bit-parallel builder "
        "(created at 0 when the pure-Python fallback runs instead)",
    ),
    MetricSpec(
        BUILD_CACHE_HITS, "counter", (),
        "per label-cache lookup answered from a stored artifact",
    ),
    MetricSpec(
        BUILD_CACHE_MISSES, "counter", (),
        "per label-cache lookup that found no stored artifact",
    ),
    MetricSpec(
        BUILD_CACHE_INVALIDATIONS, "counter", (),
        "per stored artifact discarded as corrupt or mismatched "
        "(the entry is deleted and rebuilt)",
    ),
    MetricSpec(
        CHAOS_INJECTIONS, "counter", ("kind",),
        "per fault injected by chaos_sweep",
    ),
    MetricSpec(
        CHAOS_DETECTED_AT_LOAD, "counter", ("kind",),
        "per injection rejected by the artifact envelope at load time",
    ),
    MetricSpec(
        CHAOS_FALLBACKS, "counter", ("kind",),
        "per graded chaos query served by exact fallback",
    ),
    MetricSpec(
        CHAOS_WRONG_ANSWERS, "counter", ("kind",),
        "per graded chaos query answered wrong (must stay 0)",
    ),
    MetricSpec(
        SERVE_REQUESTS, "counter", (),
        "per pair accepted by QueryServer.submit / submit_batch "
        "(cache hits included; overload rejections are not)",
    ),
    MetricSpec(
        SERVE_REQUEST_LATENCY_SECONDS, "histogram", (),
        "submit-to-response wall time, one amortized observation per "
        "flushed micro-batch or served batch ticket (the oldest "
        "waiter's; cache hits answer inline and are not timed)",
    ),
    MetricSpec(
        SERVE_QUEUE_DEPTH, "gauge", (),
        "queued pairs across every admission shard, updated on every "
        "enqueue and flush",
    ),
    MetricSpec(
        SERVE_SHARD_DEPTH, "gauge", ("shard",),
        "queued pairs in one admission shard, updated when that shard "
        "admits (shard = stripe index)",
    ),
    MetricSpec(
        SERVE_BATCHES, "counter", (),
        "per micro-batch or batch ticket flushed to the oracle",
    ),
    MetricSpec(
        SERVE_BATCH_SUBMISSIONS, "counter", (),
        "per QueryServer.submit_batch call admitted to a shard "
        "(all-cache-hit batches resolve inline and are not counted)",
    ),
    MetricSpec(
        SERVE_COALESCE_WIDTH, "histogram", (),
        "requests per flushed micro-batch (width buckets, not seconds)",
    ),
    MetricSpec(
        SERVE_CACHE_HITS, "counter", (),
        "per request answered from the LRU result cache",
    ),
    MetricSpec(
        SERVE_CACHE_MISSES, "counter", (),
        "per request that missed the result cache and was enqueued",
    ),
    MetricSpec(
        SERVE_OVERLOADS, "counter", (),
        "per request rejected with ServerOverloadError (queue full)",
    ),
    MetricSpec(
        SERVE_WORKER_BATCHES, "counter", ("worker",),
        "per pair-array frame a ShardedQueryServer round-tripped to "
        "one worker process (worker = process slot index)",
    ),
    MetricSpec(
        SERVE_WORKER_RESTARTS, "counter", (),
        "per dead worker process respawned by ShardedQueryServer",
    ),
    MetricSpec(
        SERVE_WORKERS_ALIVE, "gauge", (),
        "live worker processes behind ShardedQueryServer, updated on "
        "start, respawn, death, and stop",
    ),
    MetricSpec(
        SERVE_GENERATION, "gauge", (),
        "monotone oracle-swap sequence number of a query server "
        "(0 at start, +1 per set_oracle; hot-swap tests assert it "
        "only ever grows)",
    ),
    MetricSpec(
        DYNAMIC_INSERTS, "counter", (),
        "per DynamicHubLabeling.insert_edge call",
    ),
    MetricSpec(
        DYNAMIC_DELETES, "counter", (),
        "per DynamicHubLabeling.delete_edge call",
    ),
    MetricSpec(
        DYNAMIC_REBUILDS, "counter", (),
        "per mutation escalated to a full rebuild by the staleness/"
        "work budget (created at 0 at construction)",
    ),
    MetricSpec(
        DYNAMIC_AFFECTED_ROOTS, "gauge", (),
        "hub roots invalidated by the most recent mutation",
    ),
    MetricSpec(
        DYNAMIC_LABELS_REPAIRED, "counter", (),
        "label entries removed plus re-added across incremental repairs",
    ),
    MetricSpec(
        DYNAMIC_REPAIR_LATENCY_SECONDS, "histogram", (),
        "wall time of each mutation's repair (rebuild fallbacks "
        "included)",
    ),
    MetricSpec(
        SHM_ATTACHES, "counter", ("source",),
        "per zero-copy label store opened (source = shm for "
        "shared-memory segments, mmap for mapped artifact files)",
    ),
    MetricSpec(
        SHM_BYTES_MAPPED, "gauge", ("source",),
        "bytes of label-artifact envelope behind the most recently "
        "opened zero-copy store of each source",
    ),
    MetricSpec(
        SHM_CRC_CHECKS, "counter", ("outcome",),
        "per deferred envelope CRC verification over a shared or "
        "mapped store (outcome = ok | corrupt)",
    ),
    MetricSpec(
        SPAN_DURATION_SECONDS, "histogram", ("span",),
        "wall time of every completed tracing span, keyed by nested path",
    ),
    MetricSpec(
        SPAN_COUNT, "counter", ("span",),
        "completions of every tracing span, keyed by nested path",
    ),
    MetricSpec(
        BENCH_SUITE_DURATION_SECONDS, "gauge", ("suite",),
        "the exact timing each repro-bench suite wrote to "
        "BENCH_perf.json (derived from the same span measurements)",
    ),
)

#: name -> spec for every metric the instrumentation may emit.
CATALOG: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}


def catalog_names() -> Tuple[str, ...]:
    """Every catalogued metric name, sorted (the committed schema)."""
    return tuple(sorted(CATALOG))
