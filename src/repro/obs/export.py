"""Exporters: human table, JSON snapshot files, Prometheus exposition.

Everything renders from a registry *snapshot* (the JSON-serializable
dict built by :meth:`Registry.snapshot`), never from live instruments,
so ``repro stats`` can show the registry of the current process or one
dumped earlier with ``--metrics-out FILE`` through the same code path.
"""

from __future__ import annotations

import json
from math import inf
from typing import Dict, List, Optional

from .registry import Registry

__all__ = [
    "render_table",
    "render_prometheus",
    "write_snapshot",
    "load_snapshot",
    "snapshot_names",
]

#: Exposition name prefix: ``oracle.queries`` -> ``repro_oracle_queries``.
PROM_PREFIX = "repro_"


def _labels_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_table(snapshot: Dict[str, object]) -> str:
    """A fixed-width human view of a snapshot, grouped by type."""
    metrics = snapshot.get("metrics", [])
    if not metrics:
        return "(no metrics recorded)"
    rows: List[tuple] = []
    for metric in metrics:
        ident = metric["name"] + _labels_suffix(metric.get("labels", {}))
        if metric["type"] == "histogram":
            detail = (
                f"count={metric['count']} "
                f"sum={_format_value(metric['sum'])} "
                f"min={_format_value(metric['min'])} "
                f"p50={_format_value(metric['p50'])} "
                f"p95={_format_value(metric['p95'])} "
                f"p99={_format_value(metric['p99'])} "
                f"max={_format_value(metric['max'])}"
            )
        else:
            detail = _format_value(metric["value"])
        rows.append((metric["type"], ident, detail))
    width_type = max(len(row[0]) for row in rows)
    width_ident = max(len(row[1]) for row in rows)
    header = f"{'type':<{width_type}}  {'metric':<{width_ident}}  value"
    lines = [header, "-" * len(header)]
    for kind, ident, detail in rows:
        lines.append(f"{kind:<{width_type}}  {ident:<{width_ident}}  {detail}")
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    return PROM_PREFIX + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: float) -> str:
    if value == inf:
        return "+Inf"
    if value == -inf:
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus text exposition (type comments + samples).

    Counters get the conventional ``_total`` suffix; histograms expand
    into cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    """
    by_name: Dict[str, List[dict]] = {}
    for metric in snapshot.get("metrics", []):
        by_name.setdefault(metric["name"], []).append(metric)
    lines: List[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0]["type"]
        base = _prom_name(name)
        if kind == "counter":
            base += "_total"
        lines.append(f"# TYPE {base} {kind}")
        for metric in group:
            labels = metric.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for edge, count in metric["buckets"]:
                    cumulative += count
                    le = "+Inf" if edge is None else _prom_number(edge)
                    label_part = _prom_labels(labels, f'le="{le}"')
                    lines.append(f"{base}_bucket{label_part} {cumulative}")
                lines.append(
                    f"{base}_sum{_prom_labels(labels)} "
                    f"{_prom_number(metric['sum'])}"
                )
                lines.append(
                    f"{base}_count{_prom_labels(labels)} {metric['count']}"
                )
            else:
                lines.append(
                    f"{base}{_prom_labels(labels)} "
                    f"{_prom_number(metric['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot(registry: Registry, path: str) -> Dict[str, object]:
    """Dump ``registry.snapshot()`` as JSON at ``path``; returns it."""
    snapshot = registry.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot


def load_snapshot(path: str) -> Dict[str, object]:
    """Load a snapshot written by :func:`write_snapshot` (version-checked)."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValueError(f"{path}: not a metrics snapshot")
    version = snapshot.get("version")
    if version != 1:
        raise ValueError(f"{path}: unsupported snapshot version {version!r}")
    return snapshot


def snapshot_names(snapshot: Dict[str, object]) -> List[str]:
    """The sorted distinct metric names a snapshot carries."""
    return sorted({m["name"] for m in snapshot.get("metrics", [])})
