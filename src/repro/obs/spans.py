"""Lightweight tracing spans: nested wall-time scopes.

A span is a named context manager timing one phase of work::

    with span("pll.build"):
        with span("pll.sweeps"):
            ...

Spans nest through a thread-local stack: the inner span's *path* is
``"pll.build/pll.sweeps"``, so a phase keeps its identity wherever it is
invoked from.  On exit each span reports to the active registry
(resolved at exit time, so a registry swapped mid-span still receives
the record):

* histogram ``span.duration_seconds{span=<path>}`` -- one observation
  per completed span (min/max/percentiles come for free);
* counter ``span.count{span=<path>}``;
* the registry's bounded trace log (:meth:`Registry.traces`) as
  ``(path, depth, duration)``.

Under a disabled registry (:class:`~repro.obs.registry.NullRegistry`)
spans still measure -- ``sp.duration`` stays usable for callers that
feed gauges from it -- but record nothing.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import List, Optional

from .catalog import SPAN_COUNT, SPAN_DURATION_SECONDS
from .registry import get_registry

__all__ = ["Span", "span", "current_span"]

_local = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost span open on this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed scope.  ``duration`` is set when the block exits."""

    __slots__ = ("name", "path", "depth", "duration", "_start")

    def __init__(self, name: str) -> None:
        if not name or "/" in name:
            raise ValueError(
                "span names are single segments; nesting builds the path"
            )
        self.name = name
        self.path = name
        self.depth = 0
        self.duration: Optional[float] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                SPAN_DURATION_SECONDS, span=self.path
            ).observe(self.duration)
            registry.counter(SPAN_COUNT, span=self.path).inc()
            registry.record_trace(self.path, self.depth, self.duration)
        return False

    def __repr__(self) -> str:
        state = (
            f"{self.duration:.6f}s" if self.duration is not None else "open"
        )
        return f"Span({self.path!r}, {state})"


def span(name: str) -> Span:
    """A new unstarted :class:`Span`; use as a context manager."""
    return Span(name)
