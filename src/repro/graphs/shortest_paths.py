"""Shortest-path structure: paths, counts, uniqueness, hub candidates.

Beyond plain distances, the paper's arguments need the *structure* of
shortest paths:

* ``H_uv = {x : dist(u,x) + dist(x,v) = dist(u,v)}`` -- the set of valid
  hubs for the pair (Section 4);
* whether the shortest ``uv`` path is *unique* (Lemma 2.2, and the
  monotone-hubset argument of Section 1.2);
* explicit path reconstruction for the Figure 1 checks.

All functions operate on :class:`repro.graphs.Graph`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph
from .traversal import INF, shortest_path_distances

__all__ = [
    "reconstruct_path",
    "shortest_path",
    "path_weight",
    "all_pairs_distances",
    "count_shortest_paths",
    "has_unique_shortest_path",
    "hub_candidates",
    "hub_candidates_from_distances",
    "shortest_path_dag_edges",
    "is_shortest_path",
]


def reconstruct_path(parent: Sequence[int], target: int) -> List[int]:
    """Walk a parent array back from ``target`` to the tree root.

    Returns the path root -> ... -> target.  Raises ``ValueError`` if
    ``target`` was unreachable (its parent chain never reaches a root).
    """
    path = [target]
    seen = {target}
    v = target
    while parent[v] != -1:
        v = parent[v]
        if v in seen:
            raise ValueError("parent array contains a cycle")
        seen.add(v)
        path.append(v)
    path.reverse()
    return path


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target``, or None if none."""
    dist, parent = shortest_path_distances(graph, source, with_parents=True)
    if dist[target] == INF:
        return None
    assert parent is not None
    return reconstruct_path(parent, target)


def path_weight(graph: Graph, path: Sequence[int]) -> int:
    """Total weight of a vertex path; raises if an edge is missing."""
    total = 0
    for u, v in zip(path, path[1:]):
        w = graph.edge_weight(u, v)
        if w is None:
            raise ValueError(f"path uses missing edge {{{u}, {v}}}")
        total += w
    return total


def is_shortest_path(graph: Graph, path: Sequence[int]) -> bool:
    """True if ``path`` is a shortest path between its endpoints."""
    if not path:
        return False
    if len(path) == 1:
        return True
    dist, _ = shortest_path_distances(graph, path[0])
    return path_weight(graph, path) == dist[path[-1]]


def all_pairs_distances(graph: Graph) -> List[List[float]]:
    """The full n x n distance matrix (n single-source runs)."""
    return [
        shortest_path_distances(graph, s)[0] for s in graph.vertices()
    ]


def count_shortest_paths(graph: Graph, source: int) -> Tuple[List[float], List[int]]:
    """Distances and the number of distinct shortest paths from ``source``.

    Counts are exact integers (may be exponentially large; Python ints).
    Requires all edge weights positive OR the zero-weight edges to not
    create zero-weight cycles of multiplicity -- for safety this function
    rejects weight-0 edges, which the paper's counting constructions never
    use on the relevant pairs.
    """
    for _, _, w in graph.edges():
        if w == 0:
            raise ValueError(
                "count_shortest_paths requires strictly positive weights"
            )
    dist, _ = shortest_path_distances(graph, source)
    order = sorted(
        (v for v in graph.vertices() if dist[v] != INF),
        key=lambda v: dist[v],
    )
    count = [0] * graph.num_vertices
    count[source] = 1
    for v in order:
        if v == source:
            continue
        total = 0
        dv = dist[v]
        for u, w in graph.neighbors(v):
            if dist[u] != INF and dist[u] + w == dv:
                total += count[u]
        count[v] = total
    return dist, count


def has_unique_shortest_path(graph: Graph, source: int, target: int) -> bool:
    """True iff exactly one shortest path connects ``source`` and ``target``."""
    dist, count = count_shortest_paths(graph, source)
    if dist[target] == INF:
        return False
    return count[target] == 1


def hub_candidates(graph: Graph, u: int, v: int) -> List[int]:
    """``H_uv``: every vertex on *some* shortest ``uv`` path.

    This is the paper's ``H_uv = {x : dist(u,x) + dist(x,v) = dist(u,v)}``.
    Costs two single-source runs.
    """
    dist_u, _ = shortest_path_distances(graph, u)
    dist_v, _ = shortest_path_distances(graph, v)
    return hub_candidates_from_distances(dist_u, dist_v, dist_u[v])


def hub_candidates_from_distances(
    dist_u: Sequence[float], dist_v: Sequence[float], duv: float
) -> List[int]:
    """``H_uv`` computed from precomputed distance rows (APSP reuse)."""
    if duv == INF:
        return []
    return [
        x
        for x in range(len(dist_u))
        if dist_u[x] != INF and dist_u[x] + dist_v[x] == duv
    ]


def shortest_path_dag_edges(
    graph: Graph, source: int
) -> Dict[int, List[int]]:
    """The shortest-path DAG from ``source``.

    Returns ``predecessors[v]`` = the neighbors ``u`` of ``v`` with
    ``dist[u] + w(u,v) == dist[v]``, i.e. the last-edge choices over all
    shortest source->v paths.  Unreachable vertices are omitted.
    """
    dist, _ = shortest_path_distances(graph, source)
    predecessors: Dict[int, List[int]] = {}
    for v in graph.vertices():
        if dist[v] == INF or v == source:
            continue
        preds = [
            u
            for u, w in graph.neighbors(v)
            if dist[u] != INF and dist[u] + w == dist[v]
        ]
        predecessors[v] = preds
    return predecessors
