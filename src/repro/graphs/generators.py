"""Graph generators used by tests, examples, and benchmarks.

All generators return plain :class:`repro.graphs.Graph` objects with
vertices ``0 .. n-1``.  Every randomized generator takes a
**keyword-only** ``seed`` (default 0) and derives all of its randomness
from one ``random.Random(seed)`` instance, so the same ``(arguments,
seed)`` pair always produces the same graph -- no generator touches the
global RNG.  ``tests/test_generators.py`` enforces the convention by
enumerating this module.

Beyond the paper-shaped families (trees, grids, bounded degree, the
sparse ``m = O(n)`` stock graph), the module carries a small *graph
zoo* of realistic topologies the benchmark and differential suites
sweep: preferential attachment (:func:`barabasi_albert`), power-law
degree sequences realized by a configuration model
(:func:`powerlaw_degree_sequence` + :func:`configuration_model`),
small-world rings (:func:`watts_strogatz`), and road-network-like
grids with diagonals and deletions (:func:`road_network`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_2d",
    "torus_2d",
    "balanced_binary_tree",
    "random_tree",
    "caterpillar",
    "gnm_random_graph",
    "erdos_renyi",
    "random_sparse_graph",
    "random_bounded_degree_graph",
    "hypercube_graph",
    "random_weighted_graph",
    "barabasi_albert",
    "random_geometric",
    "is_graphical",
    "powerlaw_degree_sequence",
    "configuration_model",
    "powerlaw_configuration",
    "watts_strogatz",
    "road_network",
]


def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices (0 - 1 - ... - n-1)."""
    g = Graph(n)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """The star: vertex 0 joined to 1 .. n-1."""
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def complete_graph(n: int) -> Graph:
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with sides ``0..a-1`` and ``a..a+b-1``."""
    g = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g


def grid_2d(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex (r, c) has index ``r * cols + c``."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_2d(rows: int, cols: int) -> Graph:
    """The rows x cols torus (grid with wraparound); needs sides >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both sides >= 3")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def balanced_binary_tree(depth: int) -> Graph:
    """The perfectly balanced binary tree of the given depth.

    Depth 0 is a single vertex; depth d has ``2^(d+1) - 1`` vertices in
    heap order (children of v are 2v+1 and 2v+2).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    g = Graph(n)
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                g.add_edge(v, child)
    return g


def random_tree(n: int, *, seed: int = 0) -> Graph:
    """A uniformly random labelled tree (random Prüfer sequence).

    All randomness comes from ``random.Random(seed)``.
    """
    if n <= 0:
        raise ValueError("tree needs at least one vertex")
    g = Graph(n)
    if n == 1:
        return g
    if n == 2:
        g.add_edge(0, 1)
        return g
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a spine path with ``legs_per_vertex`` leaves each."""
    n = spine + spine * legs_per_vertex
    g = Graph(n)
    for v in range(spine - 1):
        g.add_edge(v, v + 1)
    leaf = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(v, leaf)
            leaf += 1
    return g


def gnm_random_graph(n: int, m: int, *, seed: int = 0) -> Graph:
    """A uniformly random simple graph with ``n`` vertices and ``m`` edges.

    All randomness comes from ``random.Random(seed)``.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges on {n} vertices")
    rng = random.Random(seed)
    g = Graph(n)
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in chosen:
            continue
        chosen.add(edge)
        g.add_edge(*edge)
    return g


def erdos_renyi(n: int, p: float, *, seed: int = 0) -> Graph:
    """The Erdos-Renyi ``G(n, p)`` model: each pair is an edge w.p. ``p``.

    Uses geometric skipping (Batagelj-Brandes) over the ordered pairs,
    so generation costs ``O(n + m)`` expected time instead of walking
    all ``n * (n - 1) / 2`` candidates.  In the sparse regime the
    benchmarks use (``p = c / n``), expected degree is ``c`` -- the
    classic ``m = O(n)`` graph the paper's lower bound addresses.  All
    randomness comes from ``random.Random(seed)``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    g = Graph(n)
    if p == 0.0 or n < 2:
        return g
    rng = random.Random(seed)
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                g.add_edge(u, v)
        return g
    from math import log

    log_q = log(1.0 - p)
    u, v = 0, 0
    while u < n:
        # Skip ahead by a geometric(p) gap in the flattened pair order.
        v += 1 + int(log(1.0 - rng.random()) / log_q)
        while v >= n and u < n:
            excess = v - n
            u += 1
            v = u + 1 + excess
        if u < n:
            g.add_edge(u, v)
    return g


def random_sparse_graph(
    n: int, *, seed: int = 0, avg_degree: float = 3.0
) -> Graph:
    """A *connected* sparse random graph with ~``avg_degree * n / 2`` edges.

    A random spanning tree guarantees connectivity; the remaining edges are
    sampled uniformly.  This is the stock "sparse graph" of the paper
    (``m = O(n)``).  All randomness comes from ``random.Random(seed)``.
    """
    g = random_tree(n, seed=seed)
    target_edges = max(n - 1, int(round(avg_degree * n / 2)))
    rng = random.Random(seed + 1)
    attempts = 0
    limit = 50 * target_edges + 100
    while g.num_edges < target_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_bounded_degree_graph(
    n: int,
    max_degree: int,
    *,
    seed: int = 0,
    target_edges: Optional[int] = None,
) -> Graph:
    """A connected random graph with maximum degree <= ``max_degree``.

    Starts from a path (degree <= 2) and adds random edges subject to the
    degree cap.  ``max_degree`` must be at least 2.  All randomness
    comes from ``random.Random(seed)``.
    """
    if max_degree < 2:
        raise ValueError("max_degree must be at least 2")
    g = path_graph(n)
    if target_edges is None:
        target_edges = min(n * max_degree // 2, n - 1 + n // 2)
    rng = random.Random(seed)
    attempts = 0
    limit = 50 * max(target_edges, 1) + 100
    while g.num_edges < target_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if (
            u != v
            and g.degree(u) < max_degree
            and g.degree(v) < max_degree
            and not g.has_edge(u, v)
        ):
            g.add_edge(u, v)
    return g


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` vertices."""
    n = 1 << dimension
    g = Graph(n)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u)
    return g


def random_weighted_graph(
    n: int,
    m: int,
    *,
    max_weight: int = 10,
    seed: int = 0,
) -> Graph:
    """A connected random graph with integer weights in [1, max_weight].

    All randomness comes from ``random.Random(seed)``.
    """
    rng = random.Random(seed)
    g = random_tree(n, seed=seed)
    # Re-weight the tree edges.
    edges: List[Tuple[int, int]] = [(u, v) for u, v, _ in g.edges()]
    g2 = Graph(n)
    for u, v in edges:
        g2.add_edge(u, v, rng.randint(1, max_weight))
    attempts = 0
    limit = 50 * max(m, 1) + 100
    while g2.num_edges < m and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g2.has_edge(u, v):
            g2.add_edge(u, v, rng.randint(1, max_weight))
    return g2


def barabasi_albert(n: int, attach: int = 2, *, seed: int = 0) -> Graph:
    """Preferential attachment (Barabasi-Albert style).

    Starts from a small clique of ``attach + 1`` vertices; every new
    vertex attaches to ``attach`` existing vertices sampled with
    probability proportional to degree.  Produces the heavy-tailed
    degree distributions on which PLL-style hub labelings shine
    (high-degree hubs cover most pairs).  All randomness comes from
    ``random.Random(seed)``.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    core = attach + 1
    if n < core:
        return complete_graph(max(n, 0))
    rng = random.Random(seed)
    g = complete_graph(core)
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportional to degree.
    endpoints: List[int] = []
    for u, v, _ in g.edges():
        endpoints.extend((u, v))
    for v in range(core, n):
        g.add_vertex()
        chosen = set()
        guard = 0
        while len(chosen) < attach and guard < 50 * attach:
            guard += 1
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        for u in chosen:
            g.add_edge(v, u)
            endpoints.extend((u, v))
    return g


def random_geometric(n: int, radius: float, *, seed: int = 0) -> Graph:
    """A random geometric graph on the unit square.

    Vertices get uniform coordinates; edges join pairs within
    ``radius``.  The planar-ish locality makes separator-based schemes
    competitive -- the other end of the spectrum from Barabasi-Albert.
    All randomness comes from ``random.Random(seed)``.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph(n)
    r2 = radius * radius
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            if (xu - xv) ** 2 + (yu - yv) ** 2 <= r2:
                g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# Graph zoo: power-law, small-world, and road-network-like families
# ---------------------------------------------------------------------------


def is_graphical(degrees: Sequence[int]) -> bool:
    """Erdős–Gallai test: can ``degrees`` be realized by a simple graph?"""
    if any(d < 0 for d in degrees):
        return False
    n = len(degrees)
    if any(d >= n for d in degrees):
        return False
    if sum(degrees) % 2:
        return False
    ordered = sorted(degrees, reverse=True)
    prefix = 0
    for k in range(1, n + 1):
        prefix += ordered[k - 1]
        tail = sum(min(d, k) for d in ordered[k:])
        if prefix > k * (k - 1) + tail:
            return False
    return True


def powerlaw_degree_sequence(
    n: int,
    *,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: int = 0,
) -> List[int]:
    """A graphical power-law degree sequence: ``P(deg = k) ~ k^-exponent``.

    Degrees are drawn i.i.d. from the truncated distribution on
    ``[min_degree, max_degree]`` (default cap ``~2 * sqrt(n)``, the
    usual structural-cutoff choice that keeps the sequence realizable
    as a simple graph) using ``random.Random(seed)``, then repaired to
    be graphical: the parity of the degree sum is fixed by bumping one
    vertex, and while the Erdős–Gallai condition fails the largest
    degree is decremented.  The result always satisfies
    :func:`is_graphical`, so :func:`configuration_model` can realize it
    exactly.
    """
    if n < 2:
        raise ValueError("need at least 2 vertices")
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    if min_degree < 1:
        raise ValueError("min_degree must be >= 1")
    if max_degree is None:
        max_degree = max(min_degree, min(n - 1, int(2 * n ** 0.5)))
    max_degree = min(max_degree, n - 1)
    if max_degree < min_degree:
        raise ValueError("max_degree must be >= min_degree")
    rng = random.Random(seed)
    support = list(range(min_degree, max_degree + 1))
    weights = [k ** -exponent for k in support]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    import bisect

    degrees = [
        support[bisect.bisect_left(cumulative, rng.random())]
        for _ in range(n)
    ]
    if sum(degrees) % 2:
        # Bump the smallest degree that has headroom (parity repair).
        index = min(range(n), key=lambda i: degrees[i])
        degrees[index] += 1
    while not is_graphical(degrees):
        index = max(range(n), key=lambda i: degrees[i])
        degrees[index] -= 2  # keep the sum even
        if degrees[index] < 0:
            raise ValueError("degree sequence cannot be repaired")
    return degrees


def configuration_model(
    degrees: Sequence[int], *, seed: int = 0, swaps: Optional[int] = None
) -> Graph:
    """A uniform-ish simple graph realizing ``degrees`` **exactly**.

    Unlike the textbook stub-matching construction (which produces
    self-loops and multi-edges that would silently change the degree
    sequence when erased), this realizes the sequence deterministically
    with Havel–Hakimi and then randomizes it with ``swaps`` seeded
    degree-preserving double-edge swaps (default ``10 * m`` attempts,
    driven by ``random.Random(seed)``).  The result is always simple --
    no self-loops, no multi-edges -- and its degree sequence equals
    ``degrees`` entry for entry.  Raises :class:`ValueError` when the
    sequence is not graphical.  Connectivity is *not* guaranteed.
    """
    if not is_graphical(degrees):
        raise ValueError(f"degree sequence is not graphical: {list(degrees)}")
    n = len(degrees)
    # Havel–Hakimi: repeatedly connect the highest-degree vertex to the
    # next-highest remainder.
    remaining = sorted(
        ((d, v) for v, d in enumerate(degrees)), reverse=True
    )
    adjacency = {v: set() for v in range(n)}
    while remaining and remaining[0][0] > 0:
        d, v = remaining[0]
        rest = remaining[1:]
        if d > len(rest):
            raise ValueError("degree sequence is not graphical")
        for i in range(d):
            w_deg, w = rest[i]
            adjacency[v].add(w)
            adjacency[w].add(v)
            rest[i] = (w_deg - 1, w)
        remaining = sorted(rest, reverse=True)
    edges = sorted(
        (min(u, w), max(u, w))
        for u in adjacency
        for w in adjacency[u]
        if u < w
    )
    # Degree-preserving double-edge swaps: (a,b),(c,d) -> (a,d),(c,b).
    rng = random.Random(seed)
    edge_set = set(edges)
    edge_list = list(edges)
    m = len(edge_list)
    attempts = 10 * m if swaps is None else swaps
    for _ in range(attempts):
        if m < 2:
            break
        i = rng.randrange(m)
        j = rng.randrange(m)
        if i == j:
            continue
        a, b = edge_list[i]
        c, d = edge_list[j]
        if rng.random() < 0.5:
            c, d = d, c
        if a == d or c == b:
            continue
        new_one = (min(a, d), max(a, d))
        new_two = (min(c, b), max(c, b))
        if new_one in edge_set or new_two in edge_set:
            continue
        edge_set.discard(edge_list[i])
        edge_set.discard(edge_list[j])
        edge_set.add(new_one)
        edge_set.add(new_two)
        edge_list[i] = new_one
        edge_list[j] = new_two
    g = Graph(n)
    for u, w in sorted(edge_set):
        g.add_edge(u, w)
    return g


def powerlaw_configuration(
    n: int,
    *,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: int = 0,
) -> Graph:
    """Power-law graph: :func:`powerlaw_degree_sequence` realized by
    :func:`configuration_model`.

    Both stages derive their randomness from ``seed`` (the sequence
    from ``random.Random(seed)``, the edge swaps from
    ``random.Random(seed + 1)``), so the whole construction is pinned
    by one integer.  Connectivity is not guaranteed -- power-law
    graphs with ``min_degree=1`` routinely shed tiny components, which
    is exactly the INF-pair coverage the differential suites want.
    """
    degrees = powerlaw_degree_sequence(
        n,
        exponent=exponent,
        min_degree=min_degree,
        max_degree=max_degree,
        seed=seed,
    )
    return configuration_model(degrees, seed=seed + 1)


def watts_strogatz(n: int, k: int = 4, beta: float = 0.1, *, seed: int = 0) -> Graph:
    """A seeded Watts–Strogatz small-world ring.

    Starts from the ring lattice where every vertex connects to its
    ``k / 2`` nearest neighbors on each side (``k`` even, ``2 <= k <
    n``), then rewires each edge of offset ``>= 2`` with probability
    ``beta`` to a uniform non-adjacent target (``random.Random(seed)``
    drives both coin and target).  The offset-1 ring is never rewired,
    so the graph is **always connected**; rewiring replaces one edge
    with one edge, so the graph has exactly ``n * k / 2`` edges and no
    self-loops or multi-edges.
    """
    if k < 2 or k % 2:
        raise ValueError("k must be even and >= 2")
    if k >= n:
        raise ValueError("k must be < n")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    rng = random.Random(seed)
    g = Graph(n)
    for v in range(n):
        g.add_edge(v, (v + 1) % n)  # the never-rewired connectivity ring

    def fresh_target(v: int) -> Optional[int]:
        """A uniform vertex not yet adjacent to ``v`` (None if saturated)."""
        for _ in range(8):
            w = rng.randrange(n)
            if w != v and not g.has_edge(v, w):
                return w
        candidates = [
            w for w in range(n) if w != v and not g.has_edge(v, w)
        ]
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    for offset in range(2, k // 2 + 1):
        for v in range(n):
            target: Optional[int] = (v + offset) % n
            if rng.random() < beta or g.has_edge(v, target):
                # Rewire (or dodge a collision with an earlier rewire);
                # the replacement keeps the edge count exact unless the
                # vertex is already adjacent to everyone.
                target = fresh_target(v)
            if target is not None:
                g.add_edge(v, target)
    return g


def road_network(
    rows: int,
    cols: int,
    *,
    diagonal_prob: float = 0.15,
    delete_prob: float = 0.1,
    seed: int = 0,
) -> Graph:
    """A road-network-like graph: a sparse planar-ish grid with noise.

    Starts from the ``rows x cols`` grid, adds one random diagonal per
    cell with probability ``diagonal_prob``, then attempts to delete
    each *grid* edge with probability ``delete_prob`` -- a deletion is
    committed only if the graph stays connected, so the result is
    **always connected** while losing the grid's regularity.  All
    randomness comes from ``random.Random(seed)``.  Vertex ``(r, c)``
    has index ``r * cols + c``, matching :func:`grid_2d`.
    """
    if rows < 2 or cols < 2:
        raise ValueError("road network needs both sides >= 2")
    rng = random.Random(seed)
    n = rows * cols
    adjacency = {v: set() for v in range(n)}

    def link(u: int, w: int) -> None:
        adjacency[u].add(w)
        adjacency[w].add(u)

    grid_edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                link(v, v + 1)
                grid_edges.append((v, v + 1))
            if r + 1 < rows:
                link(v, v + cols)
                grid_edges.append((v, v + cols))
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_prob:
                v = r * cols + c
                if rng.random() < 0.5:
                    link(v, v + cols + 1)  # \ diagonal
                else:
                    link(v + 1, v + cols)  # / diagonal

    def connected_without(u: int, w: int) -> bool:
        seen = {u}
        stack = [u]
        while stack:
            x = stack.pop()
            if x == w:
                return True
            for y in adjacency[x]:
                if (x, y) in ((u, w), (w, u)):
                    continue
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return False

    candidates = [e for e in grid_edges if rng.random() < delete_prob]
    rng.shuffle(candidates)
    for u, w in candidates:
        if connected_without(u, w):
            adjacency[u].discard(w)
            adjacency[w].discard(u)

    g = Graph(n)
    for u in range(n):
        for w in adjacency[u]:
            if u < w:
                g.add_edge(u, w)
    return g
