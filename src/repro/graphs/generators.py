"""Graph generators used by tests, examples, and benchmarks.

All generators return plain :class:`repro.graphs.Graph` objects with
vertices ``0 .. n-1``.  Randomized generators take an explicit ``seed``
so every experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_2d",
    "torus_2d",
    "balanced_binary_tree",
    "random_tree",
    "caterpillar",
    "gnm_random_graph",
    "random_sparse_graph",
    "random_bounded_degree_graph",
    "hypercube_graph",
    "random_weighted_graph",
    "barabasi_albert",
    "random_geometric",
]


def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices (0 - 1 - ... - n-1)."""
    g = Graph(n)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """The star: vertex 0 joined to 1 .. n-1."""
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(0, v)
    return g


def complete_graph(n: int) -> Graph:
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with sides ``0..a-1`` and ``a..a+b-1``."""
    g = Graph(a + b)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g


def grid_2d(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex (r, c) has index ``r * cols + c``."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_2d(rows: int, cols: int) -> Graph:
    """The rows x cols torus (grid with wraparound); needs sides >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs both sides >= 3")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def balanced_binary_tree(depth: int) -> Graph:
    """The perfectly balanced binary tree of the given depth.

    Depth 0 is a single vertex; depth d has ``2^(d+1) - 1`` vertices in
    heap order (children of v are 2v+1 and 2v+2).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    g = Graph(n)
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                g.add_edge(v, child)
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random labelled tree (random Prüfer sequence)."""
    if n <= 0:
        raise ValueError("tree needs at least one vertex")
    g = Graph(n)
    if n == 1:
        return g
    if n == 2:
        g.add_edge(0, 1)
        return g
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a spine path with ``legs_per_vertex`` leaves each."""
    n = spine + spine * legs_per_vertex
    g = Graph(n)
    for v in range(spine - 1):
        g.add_edge(v, v + 1)
    leaf = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(v, leaf)
            leaf += 1
    return g


def gnm_random_graph(n: int, m: int, seed: int = 0) -> Graph:
    """A uniformly random simple graph with ``n`` vertices and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges on {n} vertices")
    rng = random.Random(seed)
    g = Graph(n)
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in chosen:
            continue
        chosen.add(edge)
        g.add_edge(*edge)
    return g


def random_sparse_graph(n: int, seed: int = 0, avg_degree: float = 3.0) -> Graph:
    """A *connected* sparse random graph with ~``avg_degree * n / 2`` edges.

    A random spanning tree guarantees connectivity; the remaining edges are
    sampled uniformly.  This is the stock "sparse graph" of the paper
    (``m = O(n)``).
    """
    g = random_tree(n, seed=seed)
    target_edges = max(n - 1, int(round(avg_degree * n / 2)))
    rng = random.Random(seed + 1)
    attempts = 0
    limit = 50 * target_edges + 100
    while g.num_edges < target_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_bounded_degree_graph(
    n: int, max_degree: int, seed: int = 0, target_edges: Optional[int] = None
) -> Graph:
    """A connected random graph with maximum degree <= ``max_degree``.

    Starts from a path (degree <= 2) and adds random edges subject to the
    degree cap.  ``max_degree`` must be at least 2.
    """
    if max_degree < 2:
        raise ValueError("max_degree must be at least 2")
    g = path_graph(n)
    if target_edges is None:
        target_edges = min(n * max_degree // 2, n - 1 + n // 2)
    rng = random.Random(seed)
    attempts = 0
    limit = 50 * max(target_edges, 1) + 100
    while g.num_edges < target_edges and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if (
            u != v
            and g.degree(u) < max_degree
            and g.degree(v) < max_degree
            and not g.has_edge(u, v)
        ):
            g.add_edge(u, v)
    return g


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on ``2^dimension`` vertices."""
    n = 1 << dimension
    g = Graph(n)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u)
    return g


def random_weighted_graph(
    n: int,
    m: int,
    max_weight: int = 10,
    seed: int = 0,
) -> Graph:
    """A connected random graph with integer weights in [1, max_weight]."""
    rng = random.Random(seed)
    g = random_tree(n, seed=seed)
    # Re-weight the tree edges.
    edges: List[Tuple[int, int]] = [(u, v) for u, v, _ in g.edges()]
    g2 = Graph(n)
    for u, v in edges:
        g2.add_edge(u, v, rng.randint(1, max_weight))
    attempts = 0
    limit = 50 * max(m, 1) + 100
    while g2.num_edges < m and attempts < limit:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g2.has_edge(u, v):
            g2.add_edge(u, v, rng.randint(1, max_weight))
    return g2


def barabasi_albert(n: int, attach: int = 2, seed: int = 0) -> Graph:
    """Preferential attachment (Barabasi-Albert style).

    Starts from a small clique of ``attach + 1`` vertices; every new
    vertex attaches to ``attach`` existing vertices sampled with
    probability proportional to degree.  Produces the heavy-tailed
    degree distributions on which PLL-style hub labelings shine
    (high-degree hubs cover most pairs).
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    core = attach + 1
    if n < core:
        return complete_graph(max(n, 0))
    rng = random.Random(seed)
    g = complete_graph(core)
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportional to degree.
    endpoints: List[int] = []
    for u, v, _ in g.edges():
        endpoints.extend((u, v))
    for v in range(core, n):
        g.add_vertex()
        chosen = set()
        guard = 0
        while len(chosen) < attach and guard < 50 * attach:
            guard += 1
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        for u in chosen:
            g.add_edge(v, u)
            endpoints.extend((u, v))
    return g


def random_geometric(n: int, radius: float, seed: int = 0) -> Graph:
    """A random geometric graph on the unit square.

    Vertices get uniform coordinates; edges join pairs within
    ``radius``.  The planar-ish locality makes separator-based schemes
    competitive -- the other end of the spectrum from Barabasi-Albert.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph(n)
    r2 = radius * radius
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            if (xu - xv) ** 2 + (yu - yv) ** 2 <= r2:
                g.add_edge(u, v)
    return g
