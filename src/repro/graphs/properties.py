"""Structural graph properties: connectivity, diameter, degeneracy.

These are the invariants the paper's constructions promise (max degree 3,
connectivity, specific diameters) and the statistics the benchmark
harness reports for every instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .graph import Graph
from .traversal import INF, shortest_path_distances

__all__ = [
    "connected_components",
    "is_connected",
    "eccentricity",
    "diameter",
    "weighted_diameter",
    "degeneracy",
    "degree_histogram",
    "GraphStats",
    "graph_stats",
]


def connected_components(graph: Graph) -> List[List[int]]:
    """The connected components, each as a sorted vertex list."""
    seen = [False] * graph.num_vertices
    components: List[List[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            u = stack.pop()
            component.append(u)
            for v, _ in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def eccentricity(graph: Graph, v: int) -> float:
    """max_u dist(v, u); INF if the graph is disconnected."""
    dist, _ = shortest_path_distances(graph, v)
    return max(dist) if dist else 0


def diameter(graph: Graph) -> float:
    """The weighted diameter via n single-source runs (INF if disconnected)."""
    best = 0.0
    for v in graph.vertices():
        ecc = eccentricity(graph, v)
        if ecc == INF:
            return INF
        best = max(best, ecc)
    return best


def weighted_diameter(graph: Graph) -> float:
    """Alias of :func:`diameter`; kept for call-site clarity."""
    return diameter(graph)


def degeneracy(graph: Graph) -> int:
    """The degeneracy (smallest d such that every subgraph has a vertex
    of degree <= d), computed by repeated minimum-degree peeling."""
    n = graph.num_vertices
    if n == 0:
        return 0
    degree = [graph.degree(v) for v in range(n)]
    # Bucket queue over degrees.
    max_deg = max(degree) if degree else 0
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v, d in enumerate(degree):
        buckets[d].append(v)
    removed = [False] * n
    best = 0
    processed = 0
    current = 0
    while processed < n:
        while current <= max_deg and not buckets[current]:
            current += 1
        if current > max_deg:
            break
        v = buckets[current].pop()
        if removed[v] or degree[v] != current:
            continue
        removed[v] = True
        processed += 1
        best = max(best, current)
        for u, _ in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                if degree[u] >= 0:
                    buckets[degree[u]].append(u)
                    current = min(current, degree[u])
    return best


def degree_histogram(graph: Graph) -> List[int]:
    """histogram[d] = number of vertices of degree d."""
    if graph.num_vertices == 0:
        return []
    hist = [0] * (graph.max_degree() + 1)
    for v in graph.vertices():
        hist[graph.degree(v)] += 1
    return hist


@dataclass(frozen=True)
class GraphStats:
    """A summary record printed by the benchmark harness."""

    num_vertices: int
    num_edges: int
    max_degree: int
    average_degree: float
    is_connected: bool
    diameter: Optional[float]

    def row(self) -> Tuple:
        return (
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            round(self.average_degree, 3),
            self.is_connected,
            self.diameter,
        )


def graph_stats(graph: Graph, *, with_diameter: bool = False) -> GraphStats:
    """Collect a :class:`GraphStats` record (diameter is opt-in: O(nm))."""
    diam = diameter(graph) if with_diameter else None
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        average_degree=graph.average_degree(),
        is_connected=is_connected(graph),
        diameter=diam,
    )
