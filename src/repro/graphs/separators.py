"""Balanced separators.

Section 1.1 of the paper recalls that planar graphs get ``O(sqrt n)``
hub labelings from recursive balanced separators [GPPR04].  This module
finds the separators; the recursive labeling construction lives in
:mod:`repro.core.separator_scheme` (it needs the hub-label store).

* :func:`grid_separator` -- the canonical middle row/column of a 2D
  grid (size ``min(rows, cols)``, perfectly balanced);
* :func:`bfs_level_separator` -- generic: the BFS level whose removal
  best balances below vs above (exact on grid-like graphs, a heuristic
  elsewhere; always a genuine separator because BFS levels are cuts).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = ["bfs_level_separator", "grid_separator"]


def grid_separator(rows: int, cols: int) -> List[int]:
    """The middle row (or column, whichever is shorter) of a grid
    indexed as ``r * cols + c`` (matching :func:`repro.graphs.grid_2d`)."""
    if rows <= cols:
        r = rows // 2
        return [r * cols + c for c in range(cols)]
    c = cols // 2
    return [r * cols + c for r in range(rows)]


def bfs_level_separator(graph: Graph, component: Sequence[int]) -> List[int]:
    """A separator from BFS levels inside ``component``.

    Runs BFS from an arbitrary component vertex and returns the level
    whose removal best balances "below" against "above", preferring
    smaller levels among equally balanced options.  Non-empty whenever
    the component is.
    """
    members = set(component)
    if len(members) <= 1:
        return list(members)
    source = component[0]
    level = {source: 0}
    frontier = [source]
    levels: List[List[int]] = [[source]]
    while frontier:
        nxt = []
        for u in frontier:
            for v, _ in graph.neighbors(u):
                if v in members and v not in level:
                    level[v] = level[u] + 1
                    nxt.append(v)
        if nxt:
            levels.append(nxt)
        frontier = nxt
    if len(levels) == 1:
        return [source]
    total = len(level)
    best: Optional[Tuple[float, int, int]] = None
    below = 0
    for i, layer in enumerate(levels):
        above = total - below - len(layer)
        imbalance = max(below, above) / total
        score = (imbalance, len(layer), i)
        if best is None or score < best:
            best = score
        below += len(layer)
    return levels[best[2]]
