"""Compressed sparse row (CSR) adjacency for tight traversal loops.

The list-of-tuples :class:`~repro.graphs.Graph` is convenient; for the
big hard instances (10^4-10^5 vertices) the labeling algorithms want a
flat layout: ``offsets[v] : offsets[v+1]`` slices ``targets`` (and
``weights``) -- no per-edge tuple objects, no dict lookups.

:class:`CSRGraph` is a read-only view built from a :class:`Graph`;
:func:`repro.core.pll_fast.fast_pruned_landmark_labeling` consumes it.
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Read-only CSR adjacency built from a :class:`Graph`."""

    __slots__ = (
        "num_vertices",
        "offsets",
        "targets",
        "weights",
        "is_weighted",
        "_num_edges",
    )

    def __init__(self, graph: Graph) -> None:
        n = graph.num_vertices
        self.num_vertices = n
        self._num_edges = graph.num_edges
        degrees = [graph.degree(v) for v in range(n)]
        offsets = [0] * (n + 1)
        for v in range(n):
            offsets[v + 1] = offsets[v] + degrees[v]
        targets = [0] * offsets[n]
        weights = [0] * offsets[n]
        cursor = list(offsets[:n])
        for v in range(n):
            for u, w in graph.neighbors(v):
                targets[cursor[v]] = u
                weights[cursor[v]] = w
                cursor[v] += 1
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.is_weighted = graph.is_weighted

    @property
    def num_edges(self) -> int:
        """Edge count carried over from the source :class:`Graph`.

        Counting ``len(self.targets) // 2`` would silently halve
        odd-length adjacency (self-loops or digraph-style builds store
        one slot per direction); the builder knows the true count, so
        it is recorded instead of re-derived.
        """
        return self._num_edges

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, {kind})"
        )

    def neighbor_slice(self, v: int) -> Tuple[int, int]:
        """The [start, end) range of ``v``'s neighbors in ``targets``."""
        return self.offsets[v], self.offsets[v + 1]

    def neighbor_ids(self, v: int) -> List[int]:
        start, end = self.neighbor_slice(v)
        return self.targets[start:end]
