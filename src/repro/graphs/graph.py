"""Core graph data structures.

The library works with undirected graphs whose vertices are the integers
``0 .. n-1`` and whose edges carry non-negative integer weights (an
unweighted graph is simply one where every edge has weight 1).  Zero-weight
edges are allowed because the paper's degree-reduction step (Section 4)
splits high-degree vertices using weight-0 auxiliary edges.

Two classes are provided:

* :class:`Graph` -- the compact integer-vertex adjacency-list graph used by
  every algorithm in the library.
* :class:`GraphBuilder` -- a convenience builder that accepts arbitrary
  hashable vertex names (the paper's constructions use structured names
  such as ``("level", i, vector)``) and produces a :class:`Graph` plus the
  name <-> index maps.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """An undirected graph with non-negative integer edge weights.

    Vertices are ``0 .. n-1``.  Parallel edges are not stored: adding an
    edge that already exists keeps the smaller weight (the natural metric
    semantics).  Self-loops are rejected, as they never lie on a shortest
    path.

    The adjacency structure is a list of per-vertex lists of
    ``(neighbor, weight)`` pairs, which keeps traversal tight loops free
    of dictionary overhead.
    """

    __slots__ = ("_adj", "_num_edges", "_weighted")

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._adj: List[List[Tuple[int, int]]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        self._weighted = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its index."""
        self._adj.append([])
        return len(self._adj) - 1

    def add_vertices(self, count: int) -> range:
        """Append ``count`` fresh vertices, returning their index range."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self._adj)
        self._adj.extend([] for _ in range(count))
        return range(start, len(self._adj))

    def add_edge(self, u: int, v: int, weight: int = 1) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight.

        If the edge already exists the minimum of the old and new weight is
        kept.  Raises ``ValueError`` for self-loops or negative weights.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if weight < 0:
            raise ValueError(f"negative edge weight {weight} is not allowed")
        existing = self.edge_weight(u, v)
        if existing is not None:
            if weight < existing:
                self._set_weight(u, v, weight)
                self._set_weight(v, u, weight)
            return
        self._adj[u].append((v, weight))
        self._adj[v].append((u, weight))
        self._num_edges += 1
        if weight != 1:
            self._weighted = True

    def remove_edge(self, u: int, v: int) -> int:
        """Remove the undirected edge ``{u, v}`` and return its weight.

        Raises ``KeyError`` if the edge is absent.  ``is_weighted`` stays
        conservatively ``True`` even if the last non-unit edge is removed
        (it only gates which traversal is used, and Dijkstra remains
        correct on unit weights).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        weight = self.edge_weight(u, v)
        if weight is None:
            raise KeyError(f"edge {{{u}, {v}}} not present")
        self._adj[u] = [pair for pair in self._adj[u] if pair[0] != v]
        self._adj[v] = [pair for pair in self._adj[v] if pair[0] != u]
        self._num_edges -= 1
        return weight

    def _set_weight(self, u: int, v: int, weight: int) -> None:
        row = self._adj[u]
        for i, (w, _) in enumerate(row):
            if w == v:
                row[i] = (v, weight)
                if weight != 1:
                    self._weighted = True
                return
        raise KeyError(f"edge {{{u}, {v}}} not present")

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise IndexError(f"vertex {v} out of range [0, {len(self._adj)})")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_weighted(self) -> bool:
        """True if any edge has weight != 1 (so BFS is not sufficient)."""
        return self._weighted

    def vertices(self) -> range:
        return range(len(self._adj))

    def neighbors(self, v: int) -> List[Tuple[int, int]]:
        """The list of ``(neighbor, weight)`` pairs of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._adj[v]

    def neighbor_ids(self, v: int) -> List[int]:
        """Just the neighbor indices of ``v``."""
        self._check_vertex(v)
        return [u for u, _ in self._adj[v]]

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(row) for row in self._adj), default=0)

    def average_degree(self) -> float:
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return self.edge_weight(u, v) is not None

    def edge_weight(self, u: int, v: int) -> Optional[int]:
        """Weight of edge ``{u, v}``, or ``None`` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if len(self._adj[u]) > len(self._adj[v]):
            u, v = v, u
        for w, weight in self._adj[u]:
            if w == v:
                return weight
        return None

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u, row in enumerate(self._adj):
            for v, weight in row:
                if u < v:
                    yield (u, v, weight)

    def total_weight(self) -> int:
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph(self.num_vertices)
        g._adj = [list(row) for row in self._adj]
        g._num_edges = self._num_edges
        g._weighted = self._weighted
        return g

    def induced_subgraph(self, keep: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """The subgraph induced by ``keep``.

        Returns ``(subgraph, old_to_new)`` where ``old_to_new`` maps
        retained original indices to indices in the subgraph.
        """
        kept = sorted(set(keep))
        for v in kept:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(kept)}
        sub = Graph(len(kept))
        for old_u in kept:
            for old_v, weight in self._adj[old_u]:
                if old_u < old_v and old_v in old_to_new:
                    sub.add_edge(old_to_new[old_u], old_to_new[old_v], weight)
        return sub, old_to_new

    def remove_vertices(self, drop: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """The subgraph obtained by deleting ``drop`` and incident edges."""
        drop_set = set(drop)
        return self.induced_subgraph(
            v for v in self.vertices() if v not in drop_set
        )

    def __repr__(self) -> str:
        kind = "weighted" if self._weighted else "unweighted"
        return (
            f"Graph(n={self.num_vertices}, m={self.num_edges}, {kind})"
        )


class GraphBuilder:
    """Build a :class:`Graph` using arbitrary hashable vertex names.

    The paper's constructions index vertices by structured names such as
    ``("grid", level, vector)`` or ``("tree", v, side, position)``.  The
    builder interns each name on first use and exposes both directions of
    the mapping after :meth:`build`.
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        self._edges: List[Tuple[int, int, int]] = []

    def vertex(self, name: Hashable) -> int:
        """Intern ``name`` and return its vertex index."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
        return idx

    def has_vertex(self, name: Hashable) -> bool:
        return name in self._index

    def add_edge(self, name_u: Hashable, name_v: Hashable, weight: int = 1) -> None:
        self._edges.append((self.vertex(name_u), self.vertex(name_v), weight))

    @property
    def num_vertices(self) -> int:
        return len(self._names)

    def build(self) -> Tuple[Graph, Dict[Hashable, int], List[Hashable]]:
        """Materialize the graph.

        Returns ``(graph, name_to_index, index_to_name)``.
        """
        g = Graph(len(self._names))
        for u, v, w in self._edges:
            g.add_edge(u, v, w)
        return g, dict(self._index), list(self._names)
