"""Graph substrate: data structures, traversals, and generators.

This package is self-contained (no third-party dependencies) and provides
everything the higher layers need from a graph library:

* :class:`Graph`, :class:`GraphBuilder` -- adjacency structures;
* BFS / 0-1 BFS / Dijkstra / bidirectional Dijkstra traversals;
* shortest-path structure (hub candidate sets, uniqueness, counting);
* deterministic generators for every graph family used in the paper's
  discussion (trees, grids, sparse random graphs, bounded degree, ...);
* structural properties (diameter, degeneracy, components).
"""

from .graph import Graph, GraphBuilder
from .traversal import (
    INF,
    bfs_distances,
    bidirectional_distance,
    dijkstra,
    distance_between,
    shortest_path_distances,
    zero_one_bfs,
)
from .shortest_paths import (
    all_pairs_distances,
    count_shortest_paths,
    has_unique_shortest_path,
    hub_candidates,
    hub_candidates_from_distances,
    is_shortest_path,
    path_weight,
    reconstruct_path,
    shortest_path,
    shortest_path_dag_edges,
)
from .generators import (
    balanced_binary_tree,
    barabasi_albert,
    caterpillar,
    complete_bipartite_graph,
    complete_graph,
    configuration_model,
    cycle_graph,
    erdos_renyi,
    gnm_random_graph,
    grid_2d,
    hypercube_graph,
    is_graphical,
    path_graph,
    powerlaw_configuration,
    powerlaw_degree_sequence,
    random_bounded_degree_graph,
    random_sparse_graph,
    random_geometric,
    random_tree,
    random_weighted_graph,
    road_network,
    star_graph,
    torus_2d,
    watts_strogatz,
)
from .properties import (
    GraphStats,
    connected_components,
    degeneracy,
    degree_histogram,
    diameter,
    eccentricity,
    graph_stats,
    is_connected,
    weighted_diameter,
)
from .betweenness import betweenness_centrality
from .csr import CSRGraph
from .dot import to_dot
from .transforms import (
    add_apex,
    cartesian_product,
    disjoint_union,
    subdivide_weighted,
)
from .separators import bfs_level_separator, grid_separator

__all__ = [
    "Graph",
    "GraphBuilder",
    "INF",
    "bfs_distances",
    "bidirectional_distance",
    "dijkstra",
    "distance_between",
    "shortest_path_distances",
    "zero_one_bfs",
    "all_pairs_distances",
    "count_shortest_paths",
    "has_unique_shortest_path",
    "hub_candidates",
    "hub_candidates_from_distances",
    "is_shortest_path",
    "path_weight",
    "reconstruct_path",
    "shortest_path",
    "shortest_path_dag_edges",
    "balanced_binary_tree",
    "barabasi_albert",
    "caterpillar",
    "complete_bipartite_graph",
    "complete_graph",
    "configuration_model",
    "cycle_graph",
    "erdos_renyi",
    "gnm_random_graph",
    "grid_2d",
    "hypercube_graph",
    "is_graphical",
    "path_graph",
    "powerlaw_configuration",
    "powerlaw_degree_sequence",
    "random_bounded_degree_graph",
    "random_sparse_graph",
    "random_geometric",
    "random_tree",
    "random_weighted_graph",
    "road_network",
    "star_graph",
    "torus_2d",
    "watts_strogatz",
    "GraphStats",
    "connected_components",
    "degeneracy",
    "degree_histogram",
    "diameter",
    "eccentricity",
    "graph_stats",
    "is_connected",
    "weighted_diameter",
    "betweenness_centrality",
    "CSRGraph",
    "to_dot",
    "add_apex",
    "cartesian_product",
    "disjoint_union",
    "subdivide_weighted",
    "bfs_level_separator",
    "grid_separator",
]
