"""Graphviz DOT export.

The paper's Figure 1 is a drawing of ``H_{2,2}`` with a highlighted
shortest path; :func:`to_dot` reproduces that kind of artifact for any
library graph -- vertices can carry display names, an edge path can be
highlighted, and weights become edge labels.  Output is plain DOT text
(no graphviz dependency; render externally if desired).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .graph import Graph

__all__ = ["to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def to_dot(
    graph: Graph,
    *,
    name: str = "G",
    names: Optional[Dict[int, str]] = None,
    highlight_path: Optional[Sequence[int]] = None,
    show_weights: bool = True,
) -> str:
    """Render the graph as DOT text.

    ``names`` maps vertex ids to display labels; ``highlight_path`` is a
    vertex sequence whose edges (and vertices) are drawn bold/colored.
    """
    highlight_edges = set()
    highlight_vertices = set(highlight_path or ())
    if highlight_path:
        for u, v in zip(highlight_path, highlight_path[1:]):
            highlight_edges.add((min(u, v), max(u, v)))
    lines = [f"graph {_quote(name)} {{", "  node [shape=circle];"]
    for v in graph.vertices():
        label = names.get(v, str(v)) if names else str(v)
        attrs = [f"label={_quote(label)}"]
        if v in highlight_vertices:
            attrs.append("color=blue")
            attrs.append("penwidth=2");
        lines.append(f"  {v} [{', '.join(attrs)}];")
    for u, v, w in graph.edges():
        attrs = []
        if show_weights and graph.is_weighted:
            attrs.append(f"label={_quote(str(w))}")
        if (u, v) in highlight_edges:
            attrs.append("color=blue")
            attrs.append("penwidth=2")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {u} -- {v}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"
