"""Single-source shortest-path traversals.

Three engines, picked by edge-weight structure:

* :func:`bfs_distances` -- unweighted graphs (all weights 1).
* :func:`zero_one_bfs` -- weights in {0, 1} (degree-reduction graphs).
* :func:`dijkstra` -- arbitrary non-negative integer weights.

:func:`shortest_path_distances` dispatches automatically.  All engines
return a distance list indexed by vertex, with :data:`INF` marking
unreachable vertices, and optionally a parent list encoding one
shortest-path tree.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional, Tuple

from .graph import Graph

__all__ = [
    "INF",
    "bfs_distances",
    "zero_one_bfs",
    "dijkstra",
    "shortest_path_distances",
    "distance_between",
    "bidirectional_distance",
]

#: Sentinel distance for unreachable vertices.  A float so comparisons with
#: any integer distance behave naturally.
INF = float("inf")


def bfs_distances(
    graph: Graph, source: int, *, with_parents: bool = False
) -> Tuple[List[float], Optional[List[int]]]:
    """Breadth-first distances from ``source`` in an unweighted graph.

    Edge weights are ignored (treated as 1); callers must ensure the graph
    is unweighted or use :func:`shortest_path_distances`.
    """
    dist: List[float] = [INF] * graph.num_vertices
    parent: Optional[List[int]] = (
        [-1] * graph.num_vertices if with_parents else None
    )
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        next_dist = dist[u] + 1
        for v, _ in graph.neighbors(u):
            if dist[v] == INF:
                dist[v] = next_dist
                if parent is not None:
                    parent[v] = u
                queue.append(v)
    return dist, parent


def zero_one_bfs(
    graph: Graph, source: int, *, with_parents: bool = False
) -> Tuple[List[float], Optional[List[int]]]:
    """0-1 BFS: shortest paths when all edge weights are in {0, 1}.

    Runs in O(n + m) using a deque (weight-0 edges go to the front).
    """
    dist: List[float] = [INF] * graph.num_vertices
    parent: Optional[List[int]] = (
        [-1] * graph.num_vertices if with_parents else None
    )
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v, w in graph.neighbors(u):
            if w not in (0, 1):
                raise ValueError(
                    f"zero_one_bfs requires weights in {{0, 1}}, found {w}"
                )
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                if parent is not None:
                    parent[v] = u
                if w == 0:
                    queue.appendleft(v)
                else:
                    queue.append(v)
    return dist, parent


def dijkstra(
    graph: Graph,
    source: int,
    *,
    with_parents: bool = False,
    cutoff: Optional[float] = None,
) -> Tuple[List[float], Optional[List[int]]]:
    """Dijkstra's algorithm from ``source``.

    ``cutoff`` stops the search once settled distances exceed it; vertices
    beyond the cutoff keep distance :data:`INF`.
    """
    dist: List[float] = [INF] * graph.num_vertices
    parent: Optional[List[int]] = (
        [-1] * graph.num_vertices if with_parents else None
    )
    dist[source] = 0
    heap: List[Tuple[int, int]] = [(0, source)]
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        if cutoff is not None and du > cutoff:
            dist[u] = INF
            continue
        for v, w in graph.neighbors(u):
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                if parent is not None:
                    parent[v] = u
                heapq.heappush(heap, (nd, v))
    if cutoff is not None:
        for v in range(len(dist)):
            if dist[v] > cutoff:
                dist[v] = INF
    return dist, parent


def shortest_path_distances(
    graph: Graph,
    source: int,
    *,
    with_parents: bool = False,
    cutoff: Optional[float] = None,
) -> Tuple[List[float], Optional[List[int]]]:
    """Distances from ``source``, picking the fastest applicable engine."""
    if not graph.is_weighted and cutoff is None:
        return bfs_distances(graph, source, with_parents=with_parents)
    return dijkstra(graph, source, with_parents=with_parents, cutoff=cutoff)


def distance_between(graph: Graph, u: int, v: int) -> float:
    """The graph distance between ``u`` and ``v`` (INF if disconnected)."""
    if u == v:
        return 0
    return bidirectional_distance(graph, u, v)


def bidirectional_distance(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra for a single pair.

    Explores balls around both endpoints simultaneously; correct for
    non-negative weights.  Returns INF if ``target`` is unreachable.
    """
    if source == target:
        return 0
    n = graph.num_vertices
    dist_f: List[float] = [INF] * n
    dist_b: List[float] = [INF] * n
    dist_f[source] = 0
    dist_b[target] = 0
    heap_f: List[Tuple[int, int]] = [(0, source)]
    heap_b: List[Tuple[int, int]] = [(0, target)]
    best = INF
    while heap_f or heap_b:
        # Termination: once the cheapest possible un-settled meeting cannot
        # beat ``best``, stop.  With one frontier exhausted, its distances
        # are final, so a single top suffices (the other side contributes
        # a non-negative amount).
        if heap_f and heap_b:
            if heap_f[0][0] + heap_b[0][0] >= best:
                break
        elif heap_f:
            if heap_f[0][0] >= best:
                break
        else:
            if heap_b[0][0] >= best:
                break
        # Expand the side with the smaller frontier distance.
        if not heap_b or (heap_f and heap_f[0][0] <= heap_b[0][0]):
            heap, dist, other = heap_f, dist_f, dist_b
        else:
            heap, dist, other = heap_b, dist_b, dist_f
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        if other[u] != INF and du + other[u] < best:
            best = du + other[u]
        for v, w in graph.neighbors(u):
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
                if other[v] != INF and nd + other[v] < best:
                    best = nd + other[v]
    return best
