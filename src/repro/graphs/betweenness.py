"""Betweenness centrality (Brandes' algorithm).

Hub-labeling practice orders vertices by how many shortest paths they
cover; exact betweenness is the canonical such score.  Used by
:func:`repro.core.orders.betweenness_order` and as an analysis tool for
the hard instances (the middle layer of ``H_{b,l}`` has maximal
betweenness -- precisely why it must be stored).

Supports weighted graphs with positive weights (Dijkstra variant) and
unweighted graphs (BFS variant).  Runs in ``O(nm + n^2 log n)``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List

from .graph import Graph
from .traversal import INF

__all__ = ["betweenness_centrality"]


def betweenness_centrality(
    graph: Graph, *, normalized: bool = False
) -> List[float]:
    """Exact betweenness of every vertex (endpoints excluded).

    With ``normalized=True`` scores are divided by ``(n-1)(n-2)/2`` (the
    undirected pair count), so they land in ``[0, 1]``.

    Weight-0 edges are rejected: path counting needs positive weights.
    """
    for _, _, w in graph.edges():
        if w == 0:
            raise ValueError("betweenness requires positive edge weights")
    n = graph.num_vertices
    centrality = [0.0] * n
    use_dijkstra = graph.is_weighted
    for source in graph.vertices():
        if use_dijkstra:
            order, predecessors, sigma = _dijkstra_sssp(graph, source)
        else:
            order, predecessors, sigma = _bfs_sssp(graph, source)
        # Dependency accumulation (Brandes).
        delta = [0.0] * n
        while order:
            w = order.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    # Each undirected pair was counted twice (once per endpoint source).
    centrality = [c / 2.0 for c in centrality]
    if normalized and n > 2:
        scale = 2.0 / ((n - 1) * (n - 2))
        centrality = [c * scale for c in centrality]
    return centrality


def _bfs_sssp(graph: Graph, source: int):
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    sigma = [0] * n
    predecessors: List[List[int]] = [[] for _ in range(n)]
    dist[source] = 0
    sigma[source] = 1
    order: List[int] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v, _ in graph.neighbors(u):
            if dist[v] == INF:
                dist[v] = dist[u] + 1
                queue.append(v)
            if dist[v] == dist[u] + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return order, predecessors, sigma


def _dijkstra_sssp(graph: Graph, source: int):
    n = graph.num_vertices
    dist: List[float] = [INF] * n
    sigma = [0] * n
    predecessors: List[List[int]] = [[] for _ in range(n)]
    dist[source] = 0
    sigma[source] = 1
    seen = [False] * n
    order: List[int] = []
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if seen[u]:
            continue
        seen[u] = True
        order.append(u)
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                sigma[v] = sigma[u]
                predecessors[v] = [u]
                heapq.heappush(heap, (nd, v))
            elif nd == dist[v] and not seen[v]:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return order, predecessors, sigma
