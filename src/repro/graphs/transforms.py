"""Graph transformations used by the constructions.

* :func:`subdivide_weighted` -- replace every weight-``w`` edge by a
  path of ``w`` unit edges (``w - 1`` fresh vertices).  Distances
  between original vertices are preserved exactly; this is the
  bare-bones version of the Section 2 edge gadget (without the
  degree-reducing trees) and turns any integer-weighted instance into
  an unweighted one at ``O(total weight)`` size.  Weight-0 edges are
  rejected (they would merge vertices).
* :func:`disjoint_union` -- side-by-side union with index offsets.
* :func:`cartesian_product` -- the box product ``G x H`` (grids are
  products of paths; used as a cross-check for the generators).
* :func:`add_apex` -- join a fresh vertex to everything (diameter-2
  smoke instances).
"""

from __future__ import annotations

from typing import List, Tuple

from .graph import Graph

__all__ = [
    "subdivide_weighted",
    "disjoint_union",
    "cartesian_product",
    "add_apex",
]


def subdivide_weighted(graph: Graph) -> Tuple[Graph, List[int]]:
    """Expand integer weights into unit paths.

    Returns ``(unweighted_graph, original_index)`` where
    ``original_index[v]`` maps each original vertex to its index in the
    new graph (originals keep their indices; auxiliaries are appended).
    """
    for _, _, w in graph.edges():
        if w == 0:
            raise ValueError("cannot subdivide weight-0 edges")
    n = graph.num_vertices
    result = Graph(n)
    for u, v, w in graph.edges():
        if w == 1:
            result.add_edge(u, v)
            continue
        previous = u
        for _ in range(w - 1):
            aux = result.add_vertex()
            result.add_edge(previous, aux)
            previous = aux
        result.add_edge(previous, v)
    return result, list(range(n))


def disjoint_union(first: Graph, second: Graph) -> Tuple[Graph, int]:
    """The disjoint union; returns ``(graph, offset)`` where the second
    graph's vertex ``v`` becomes ``offset + v``."""
    offset = first.num_vertices
    result = Graph(offset + second.num_vertices)
    for u, v, w in first.edges():
        result.add_edge(u, v, w)
    for u, v, w in second.edges():
        result.add_edge(offset + u, offset + v, w)
    return result, offset


def cartesian_product(first: Graph, second: Graph) -> Graph:
    """The Cartesian (box) product: ``(a, x) ~ (b, y)`` iff
    ``a = b and x ~ y`` or ``x = y and a ~ b``.

    Vertex ``(a, x)`` gets index ``a * |V(second)| + x``.  Edge weights
    carry over from the moving coordinate.
    """
    cols = second.num_vertices
    result = Graph(first.num_vertices * cols)
    for a in first.vertices():
        for x, y, w in second.edges():
            result.add_edge(a * cols + x, a * cols + y, w)
    for a, b, w in first.edges():
        for x in second.vertices():
            result.add_edge(a * cols + x, b * cols + x, w)
    return result


def add_apex(graph: Graph, weight: int = 1) -> Tuple[Graph, int]:
    """Add a universal vertex; returns ``(graph, apex_index)``."""
    result = graph.copy()
    apex = result.add_vertex()
    for v in range(apex):
        result.add_edge(apex, v, weight)
    return result, apex
