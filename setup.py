"""Setuptools entry point.

The environment has no network access and no ``wheel`` package, so
``pip install -e .`` must take the legacy ``setup.py develop`` path;
keeping this shim (with the metadata in pyproject.toml) enables that.
"""

from setuptools import setup

setup()
