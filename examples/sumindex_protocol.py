#!/usr/bin/env python3
"""The Theorem 1.6 reduction as a working three-party protocol.

Alice and Bob share a bit string S; Alice holds index a, Bob index b;
each sends ONE simultaneous message to a referee who must output
S[(a+b) mod m] -- the Sum-Index problem (Definition 1.5).

The paper's protocol: both parties deterministically build the graph
G'_{b,l} (the degree-3 hard instance with part of the middle layer
deleted according to S), label it with any exact distance labeling,
and send the label of their endpoint vertex.  The referee decodes the
distance between the endpoints from the two labels alone and compares
it to the Lemma 2.2 closed form: equality means the midpoint vertex
survived, i.e. the wanted bit is 1 (Observation 3.1).

Run:  python examples/sumindex_protocol.py
"""

from repro.sumindex import (
    GraphLabelingProtocol,
    SumIndexInstance,
    TrivialProtocol,
    random_bitstring,
    run_protocol,
)


def main() -> None:
    b, ell = 2, 1
    m = (2 ** (b - 1)) ** ell
    bits = random_bitstring(m, seed=9)
    print(f"parameters: b={b}, l={ell}  ->  m = (s/2)^l = {m}")
    print(f"shared string S = {''.join(map(str, bits))}\n")

    protocol = GraphLabelingProtocol(b, ell)
    trivial = TrivialProtocol(m)

    print("graph-labeling protocol (Theorem 1.6):")
    all_ok = True
    for a in range(m):
        for bb in range(m):
            inst = SumIndexInstance(bits=bits, alice_index=a, bob_index=bb)
            out, alice_bits, bob_bits = run_protocol(protocol, inst)
            ok = out == inst.answer
            all_ok &= ok
            print(
                f"  a={a} b={bb}: referee says {out}, "
                f"truth S[{(a + bb) % m}]={inst.answer} "
                f"({'ok' if ok else 'WRONG'}); "
                f"messages {alice_bits}+{bob_bits} bits"
            )
    print(f"  all instances correct: {all_ok}")

    # The pruned graph both parties build:
    pruned, _ = protocol._build(tuple(bits))
    print(
        f"\n  G'_{{b,l}} has {pruned.graph.num_vertices} vertices, "
        f"max degree {pruned.graph.max_degree()}, "
        f"{pruned.num_removed} middle-layer vertices deleted by W"
    )

    inst = SumIndexInstance(bits=bits, alice_index=0, bob_index=m - 1)
    _, triv_bits, _ = run_protocol(trivial, inst)
    print(f"\ntrivial protocol message: {triv_bits} bits (ships all of S)")
    print(
        "the reduction's price is the graph blow-up "
        "(n = m * 2^Theta(sqrt(log m')) vertices); its value is the "
        "direction: any o(SUMINDEX(m)) distance labeling of sparse "
        "graphs would beat 25 years of communication complexity."
    )


if __name__ == "__main__":
    main()
