#!/usr/bin/env python3
"""Explore the paper's hard instances and watch the lower bound bite.

Builds ``G_{b,l}`` for growing parameters and reports, side by side:

* the instance anatomy (grid cores, binary-tree gadgets, subdivision
  paths; max degree 3);
* Lemma 2.2 in action on a sample pair -- the unique shortest path and
  its forced midpoint;
* the certified lower bound of Theorem 2.1(iii) next to the label sizes
  actual constructions (PLL, sparse scheme) achieve;
* the charging audit: every midpoint triplet pays into some endpoint's
  monotone closure -- the proof's ledger, balanced on real data.

Run:  python examples/hardness_explorer.py
"""

from repro.core import pruned_landmark_labeling, sparse_hub_labeling
from repro.graphs import shortest_path
from repro.lowerbound import (
    audit_labeling,
    build_degree3_instance,
    certificate_for,
)


def explore(b: int, ell: int) -> None:
    inst = build_degree3_instance(b, ell)
    lay = inst.layered
    print(f"=== G_(b={b}, l={ell})  (s = {inst.side}, A = {lay.base_weight})")
    print(
        f"  anatomy: {inst.num_core_vertices} cores + "
        f"{inst.num_tree_vertices} tree nodes + "
        f"{inst.num_path_vertices} path nodes = "
        f"{inst.graph.num_vertices} vertices, max degree "
        f"{inst.graph.max_degree()}"
    )

    # Lemma 2.2 on one pair: show the forced midpoint.
    x = tuple([0] * ell)
    z = tuple([2] * ell) if inst.side > 2 else tuple([0] * ell)
    mid = lay.midpoint(x, z)
    cx = inst.core_vertex(0, x)
    cz = inst.core_vertex(2 * ell, z)
    path = shortest_path(inst.graph, cx, cz)
    has_mid = inst.core_vertex(ell, mid) in path
    print(
        f"  lemma 2.2 sample: dist(v_0,{x} -> v_{2 * ell},{z}) = "
        f"{lay.unique_path_length(x, z)}; passes midpoint v_{ell},{mid}: "
        f"{has_mid}"
    )

    # The lower bound vs what constructions achieve.
    cert = certificate_for(inst)
    pll = pruned_landmark_labeling(inst.graph)
    sparse = sparse_hub_labeling(inst.graph, radius=2, seed=1).labeling
    print(
        f"  certificate:   sum|S_v| >= {cert.hub_sum_lower_bound:.4f} "
        f"(avg >= {cert.average_lower_bound:.2e})"
    )
    print(
        f"  measured PLL:  sum|S_v| =  {pll.total_size()} "
        f"(avg {pll.average_size():.2f})"
    )
    print(
        f"  measured D-scheme: sum|S_v| =  {sparse.total_size()} "
        f"(avg {sparse.average_size():.2f})"
    )

    audit = audit_labeling(inst, pll)
    print(
        f"  charging audit: {audit.charge_total}/{audit.num_triplets} "
        f"triplets charged (to x: {audit.charged_to_x}, to z: "
        f"{audit.charged_to_z}); closure size {audit.closure_total}"
    )
    print()


def main() -> None:
    print(__doc__)
    explore(1, 1)
    explore(2, 1)
    explore(1, 2)


if __name__ == "__main__":
    main()
