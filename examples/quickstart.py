#!/usr/bin/env python3
"""Quickstart: build a hub labeling, answer distance queries, verify.

This walks the library's core loop in under a minute:

1. generate a sparse graph (the paper's setting: m = O(n));
2. build hub labelings with two constructions (PLL and the paper's
   Theorem 4.1 RS-based scheme);
3. answer distance queries from labels alone and check them against
   Dijkstra;
4. verify the shortest-path-cover property and compare label sizes
   with the paper's bound curves.

Run:  python examples/quickstart.py
"""

from repro.core import (
    is_valid_cover,
    pruned_landmark_labeling,
    rs_hub_labeling,
    theorem_11_average_hub_lower_bound,
    theorem_14_average_hub_upper_bound,
)
from repro.graphs import distance_between, random_sparse_graph


def main() -> None:
    n = 200
    graph = random_sparse_graph(n, seed=42, avg_degree=3.0)
    print(f"graph: {graph}")

    # -- construction ---------------------------------------------------
    pll = pruned_landmark_labeling(graph)
    rs = rs_hub_labeling(graph, threshold=3, seed=7)
    print(f"PLL labeling:        {pll}")
    print(f"RS-scheme labeling:  {rs.labeling}")
    print(f"RS component sizes:  {rs.component_sizes()}")

    # -- queries ---------------------------------------------------------
    pairs = [(0, n - 1), (3, 77), (12, 150), (5, 5)]
    print("\nqueries (label-only vs Dijkstra):")
    for u, v in pairs:
        from_labels = pll.query(u, v)
        hub = pll.meet(u, v)
        truth = distance_between(graph, u, v)
        status = "ok" if from_labels == truth else "MISMATCH"
        print(
            f"  dist({u:>3}, {v:>3}) = {from_labels}  via hub {hub}"
            f"  [dijkstra: {truth}] {status}"
        )

    # -- verification ----------------------------------------------------
    print(f"\nPLL is a valid 2-hop cover: {is_valid_cover(graph, pll)}")
    print(
        "RS scheme is a valid 2-hop cover: "
        f"{is_valid_cover(graph, rs.labeling)}"
    )

    # -- the paper's bounds ----------------------------------------------
    print("\naverage hub-set size vs the paper's curves:")
    print(f"  measured (PLL):        {pll.average_size():.2f}")
    print(f"  measured (RS scheme):  {rs.labeling.average_size():.2f}")
    print(
        "  Theorem 1.1 lower-bound curve n/2^(3 sqrt(log n)): "
        f"{theorem_11_average_hub_lower_bound(n):.2f}"
    )
    print(
        "  Theorem 1.4 upper-bound curve n/RS(n)^(1/7):       "
        f"{theorem_14_average_hub_upper_bound(n):.2f}"
    )


if __name__ == "__main__":
    main()
