#!/usr/bin/env python3
"""2-hop covers answering dependency queries on a build DAG.

Hub labeling started life as 2-hop *reachability* covers for directed
graphs [CHKZ03] -- the framework the paper's Section 1 cites first.
This example uses that original form on a software-build scenario:
thousands of "does changing X force rebuilding Y?" queries answered
from per-target labels, no graph traversal at query time.

Run:  python examples/build_dependencies.py
"""

import random

from repro.reachability import (
    DiGraph,
    is_valid_directed_cover,
    is_valid_reachability_cover,
    pruned_directed_labeling,
    pruned_reachability_labeling,
)


def synth_build_graph(layers=6, width=8, seed=3):
    """A layered DAG: sources (headers) feed intermediate libraries
    feeding final binaries, with a few skip-level includes."""
    rng = random.Random(seed)
    n = layers * width
    g = DiGraph(n)
    names = {}
    kind = ["hdr", "gen", "obj", "lib", "bin", "pkg"]
    for layer in range(layers):
        for slot in range(width):
            names[layer * width + slot] = f"{kind[layer % len(kind)]}{layer}_{slot}"
    for layer in range(layers - 1):
        for slot in range(width):
            v = layer * width + slot
            for _ in range(2):
                target = (layer + 1) * width + rng.randrange(width)
                if target != v:
                    g.add_edge(v, target)
            if layer + 2 < layers and rng.random() < 0.3:
                g.add_edge(v, (layer + 2) * width + rng.randrange(width))
    return g, names


def main() -> None:
    g, names = synth_build_graph()
    print(f"build graph: {g}, DAG: {g.is_dag()}")

    cover = pruned_reachability_labeling(g)
    print(
        f"reachability cover: avg |L_out|+|L_in| = "
        f"{cover.average_size():.2f} per target "
        f"(vs n = {g.num_vertices} for closure rows)"
    )
    print(f"cover verified exhaustively: {is_valid_reachability_cover(g, cover)}")

    # Sample impact queries.
    rng = random.Random(1)
    print("\nimpact queries (label intersection only):")
    shown = 0
    while shown < 5:
        u = rng.randrange(g.num_vertices)
        v = rng.randrange(g.num_vertices)
        if u == v:
            continue
        answer = cover.query(u, v)
        truth = g.reaches(u, v)
        assert answer == truth
        print(
            f"  change {names[u]:>8} -> rebuild {names[v]:>8}? "
            f"{'yes' if answer else 'no'}"
        )
        shown += 1

    # The distance variant: how many build stages does the impact
    # propagate through?
    distances = pruned_directed_labeling(g)
    assert is_valid_directed_cover(g, distances)
    u, v = 0, g.num_vertices - 1
    hops = distances.query(u, v)
    print(
        f"\npropagation depth {names[u]} -> {names[v]}: "
        f"{hops if hops != float('inf') else 'no dependency'}"
    )
    print(
        "labels answer both reachability and stage-distance without "
        "touching the graph -- the [CHKZ03] framework the paper's hub "
        "labelings generalize."
    )


if __name__ == "__main__":
    main()
