#!/usr/bin/env python3
"""Hub labels on a transportation-style network (Section 1.1).

The paper notes hub labeling is *practical* on transportation networks
because of their highway structure [ADF+16]: a small set of "transit"
vertices covers all long shortest paths.  This example synthesizes such
a network -- a city grid overlaid with a sparse highway mesh of
weight-1 express edges between interchange vertices -- and shows:

* hub labels stay small when the vertex order puts interchanges first
  (the contraction-hierarchies / highway-dimension effect);
* the same graph labeled in a poor (random) order is much worse;
* queries from labels match Dijkstra, at a fraction of the explored
  vertices (the oracle view, Section 1).

Run:  python examples/road_network.py
"""

import random

from repro.core import (
    is_valid_cover,
    pruned_landmark_labeling,
    random_order,
)
from repro.graphs import Graph, distance_between
from repro.labeling import HubEncodedScheme
from repro.oracles import HubLabelOracle, LandmarkOracle


def build_city(blocks: int = 12, highway_stride: int = 4) -> Graph:
    """A blocks x blocks street grid plus an express highway mesh.

    Street edges have weight 2 (stoplights); highway edges connect
    interchanges ``highway_stride`` blocks apart with weight 3
    (faster than the 2 * stride streets they replace).
    """
    g = Graph(blocks * blocks)
    for r in range(blocks):
        for c in range(blocks):
            v = r * blocks + c
            if c + 1 < blocks:
                g.add_edge(v, v + 1, 2)
            if r + 1 < blocks:
                g.add_edge(v, v + blocks, 2)
    for r in range(0, blocks, highway_stride):
        for c in range(0, blocks, highway_stride):
            v = r * blocks + c
            if c + highway_stride < blocks:
                g.add_edge(v, v + highway_stride, 3)
            if r + highway_stride < blocks:
                g.add_edge(v, v + highway_stride * blocks, 3)
    return g


def interchange_first_order(graph: Graph, blocks: int, stride: int):
    """Interchanges (highway vertices) first, then the rest by degree."""
    interchanges = [
        r * blocks + c
        for r in range(0, blocks, stride)
        for c in range(0, blocks, stride)
    ]
    rest = [v for v in graph.vertices() if v not in set(interchanges)]
    rest.sort(key=graph.degree, reverse=True)
    return interchanges + rest


def main() -> None:
    blocks, stride = 12, 4
    city = build_city(blocks, stride)
    print(f"city network: {city}")

    highway_order = interchange_first_order(city, blocks, stride)
    smart = pruned_landmark_labeling(city, highway_order)
    naive = pruned_landmark_labeling(city, random_order(city, seed=3))
    print(f"\nhighway-first order: avg hubs = {smart.average_size():.2f}, "
          f"max = {smart.max_size()}")
    print(f"random order:        avg hubs = {naive.average_size():.2f}, "
          f"max = {naive.max_size()}")
    print(f"both valid covers:   "
          f"{is_valid_cover(city, smart) and is_valid_cover(city, naive)}")

    # -- oracle comparison ------------------------------------------------
    rng = random.Random(1)
    n = city.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(30)]
    hub_oracle = HubLabelOracle(smart)
    landmark_oracle = LandmarkOracle(city, 6, seed=2)
    hub_ops = sum(hub_oracle.query(u, v).operations for u, v in pairs)
    lm_ops = sum(landmark_oracle.query(u, v).operations for u, v in pairs)
    print(f"\nquery work over {len(pairs)} random pairs:")
    print(f"  hub-label oracle:  {hub_ops / len(pairs):8.1f} ops/query, "
          f"space {hub_oracle.space_words()} words")
    print(f"  landmark oracle:   {lm_ops / len(pairs):8.1f} ops/query, "
          f"space {landmark_oracle.space_words()} words")

    mismatches = sum(
        1
        for u, v in pairs
        if hub_oracle.query(u, v).distance != distance_between(city, u, v)
    )
    print(f"  mismatches vs Dijkstra: {mismatches}")

    # -- interruptible queries (the Section 1.1 practical aside) -----------
    from repro.core import SortedHubIndex

    index = SortedHubIndex(smart)
    fraction = index.average_scan_fraction(pairs)
    print(f"\nearly-termination queries scan only "
          f"{100 * fraction:.0f}% of label entries on average")

    # -- bits per label (the distance-labeling view) -----------------------
    scheme = HubEncodedScheme(smart)
    stats = scheme.stats()
    print(f"encoded distance labels: avg {stats.average_bits:.1f} bits, "
          f"max {stats.max_bits} bits per vertex")


if __name__ == "__main__":
    main()
