"""E1: regenerate Figure 1 (H_{2,2}; blue 4A+4 unique via midpoint,
red 4A+8)."""

from repro.experiments import figure1_table, run_figure1

from conftest import record_table


def test_figure1(benchmark):
    result = benchmark(run_figure1)
    record_table("E1_figure1", figure1_table(result))
    assert result.blue_length == result.blue_expected
    assert result.blue_is_unique
    assert result.blue_passes_midpoint
    assert result.red_length == result.red_expected
