"""E9/E12: the hub-labeling landscape and monotone inflation."""

from repro.experiments import (
    baseline_table,
    monotone_table,
    run_baselines,
    run_monotone,
)

from conftest import record_table


def test_baseline_landscape(benchmark):
    def run():
        return run_baselines()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E9_baselines", baseline_table(rows))
    by_family = {r.family: r for r in rows}
    for row in rows:
        assert row.all_valid
    # Shape checks from Section 1.1:
    # trees are polylog -- far below the sparse/hard instances...
    tree = by_family["tree"]
    assert tree.centroid_avg is not None
    assert tree.centroid_avg <= 12
    # ...and the hard instance is the worst per-vertex among families
    # of comparable scale (the Theorem 1.1 effect at small b, l).
    hard = by_family["hard-G(1,1)"]
    assert hard.pll_avg >= tree.pll_avg
    # Scale-free networks are the easy extreme: high-degree hubs keep
    # PLL labels small (the practical §1.1 story).
    scale_free = by_family["scale-free"]
    assert scale_free.pll_avg <= hard.pll_avg


def test_monotone_inflation(benchmark):
    def run():
        return run_monotone()

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E12_monotone", monotone_table(rows))
    for row in rows:
        assert row.within_bound
        assert row.inflation >= 1.0
