"""E2/E3/E10: the hard-instance construction and degree reduction."""

from repro.experiments import (
    audit_construction,
    audit_degree_reduction,
    construction_table,
    degree_reduction_table,
)

from conftest import record_table


def test_construction_claims(benchmark):
    """Theorem 2.1 (i)-(ii) + Lemma 2.2, exhaustively on G_{b,l}."""

    def run():
        return [
            audit_construction(1, 1),
            audit_construction(2, 1),
            audit_construction(1, 2, use_degree3=False),
            audit_construction(2, 2, use_degree3=False),
        ]

    audits = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E2_E3_construction", construction_table(audits))
    for audit in audits:
        assert audit.claims_hold


def test_degree_reduction(benchmark):
    """Section 4's reduction: metric preserved, degree <= ceil(m/n)+2."""

    def run():
        return [
            audit_degree_reduction(40, seed=0, avg_degree=4.0),
            audit_degree_reduction(80, seed=1, avg_degree=6.0),
            audit_degree_reduction(120, seed=2, avg_degree=8.0),
        ]

    audits = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E10_degree_reduction", degree_reduction_table(audits))
    for audit in audits:
        assert audit.distances_preserved
        assert audit.reduced_max_degree <= audit.degree_bound
