"""E5: Theorem 1.6 -- the Sum-Index protocol over G'_{b,l} labels."""

from repro.experiments import (
    exact_complexity_table,
    run_exact_complexity,
    run_sum_index,
    sum_index_table,
)

from conftest import record_table


def test_sum_index_protocol(benchmark):
    def run():
        return run_sum_index([(2, 1)], num_strings=2, with_hub_backend=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E5_sum_index", sum_index_table(rows))
    for row in rows:
        assert row.all_correct
        # The graph route pays the graph blow-up: messages exceed the
        # sqrt(m) lower bound, as the reduction predicts for small m.
        assert row.row_message_bits >= row.sqrt_lower_bound
        # Hub labels beat raw rows -- the encoding direction of §1.1.
        if row.hub_message_bits is not None:
            assert row.hub_message_bits < row.row_message_bits


def test_exact_sm_complexity(benchmark):
    """E5b: brute-force the left edge of the SUMINDEX envelope."""

    def run():
        return run_exact_complexity([1, 2, 3])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E5b_exact_complexity", exact_complexity_table(rows))
    by_m = {r.m: r for r in rows}
    assert by_m[1].exact_bits == 1
    assert by_m[2].exact_bits == 2
    for row in rows:
        if row.exact_bits is not None:
            # Exact values sit inside the known envelope.
            assert row.sqrt_bound <= row.exact_bits <= row.trivial_bits


def test_sum_index_larger_instance(benchmark):
    """m = 4 (b = 2, l = 2): the 2^l-to-1 repr() folding in action."""

    def run():
        return run_sum_index(
            [(2, 2)], num_strings=1, with_hub_backend=False
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E5_sum_index_l2", sum_index_table(rows))
    assert rows[0].all_correct
    assert rows[0].m == 4
