"""Query-latency microbenchmarks: labels vs search vs matrix.

The systems argument for hub labeling: once built, a distance query is
a label merge -- orders of magnitude cheaper than running Dijkstra, at
a fraction of the matrix oracle's space.  These are genuine
pytest-benchmark timing runs (many rounds), not one-shot experiment
tables.
"""

import random

import pytest

from repro.core import SortedHubIndex, pruned_landmark_labeling
from repro.graphs import bidirectional_distance, random_sparse_graph
from repro.oracles import MatrixOracle


N = 300
SEED = 7


@pytest.fixture(scope="module")
def setup():
    graph = random_sparse_graph(N, seed=SEED)
    labeling = pruned_landmark_labeling(graph)
    rng = random.Random(SEED)
    pairs = [(rng.randrange(N), rng.randrange(N)) for _ in range(64)]
    return graph, labeling, pairs


def test_query_hub_labels(benchmark, setup):
    graph, labeling, pairs = setup

    def run():
        return [labeling.query(u, v) for u, v in pairs]

    results = benchmark(run)
    assert all(r >= 0 for r in results)


def test_query_sorted_index(benchmark, setup):
    graph, labeling, pairs = setup
    index = SortedHubIndex(labeling)

    def run():
        return [index.query(u, v).distance for u, v in pairs]

    results = benchmark(run)
    expected = [labeling.query(u, v) for u, v in pairs]
    assert results == expected


def test_query_bidirectional_search(benchmark, setup):
    graph, labeling, pairs = setup

    def run():
        return [bidirectional_distance(graph, u, v) for u, v in pairs]

    results = benchmark(run)
    expected = [labeling.query(u, v) for u, v in pairs]
    assert results == expected


def test_query_matrix_oracle(benchmark, setup):
    graph, labeling, pairs = setup
    oracle = MatrixOracle(graph)

    def run():
        return [oracle.query(u, v).distance for u, v in pairs]

    results = benchmark(run)
    expected = [labeling.query(u, v) for u, v in pairs]
    assert results == expected
