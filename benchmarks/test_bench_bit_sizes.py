"""E14: average bits per label across distance-labeling schemes."""

from repro.experiments import bit_size_table, run_bit_sizes

from conftest import record_table


def test_bit_size_landscape(benchmark):
    def run():
        return run_bit_sizes([60, 120, 240], seed=1)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E14_bit_sizes", bit_size_table(rows))
    by_key = {(r.family, r.n): r for r in rows}
    for row in rows:
        # Every scheme clears the sqrt(n) counting floor [GPPR04]...
        assert row.hub_bits > row.sqrt_floor
        # ...and hub encodings beat raw rows by a wide margin.
        assert row.hub_bits < row.row_bits / 2
        if row.incremental_bits is not None:
            assert row.incremental_bits < row.row_bits
    # Tree centroid labels are polylog: far below sparse PLL labels at
    # the same n, and within a small factor of log^2 n.
    for n in (60, 120, 240):
        tree = by_key[("tree", n)]
        assert tree.centroid_bits is not None
        assert tree.centroid_bits <= 2.5 * tree.log2_sq
