"""E6/E7: Theorem 4.1's construction components and property (*)."""

from repro.experiments import (
    hitting_table,
    run_hitting,
    run_upper_bound,
    upper_bound_table,
)

from conftest import record_table


def test_upper_bound_components(benchmark):
    def run():
        return run_upper_bound([60, 120, 200, 400], threshold=3, seed=1)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E6_upper_bound", upper_bound_table(rows))
    for row in rows:
        assert row.valid
        # Randomized components within (4x slack) expectation bounds.
        assert row.corrections <= 4 * row.corrections_bound + 4
        assert row.conflicts <= 4 * row.conflicts_bound + 4
        # The labeling is sub-quadratic: below storing all pairs (the
        # constant-factor overheads only amortize as n grows).
        assert row.total < row.n * row.n
        if row.n >= 100:
            assert row.total < row.n * row.n / 2
    # Average hub size grows sublinearly in n (shape of Theorem 1.4).
    small, large = rows[0], rows[-1]
    assert large.average / small.average < large.n / small.n


def test_hitting_property(benchmark):
    def run():
        return run_hitting([60, 120, 200, 400], threshold=5, seed=2)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E7_hitting", hitting_table(rows))
    for row in rows:
        assert row.sample_size <= row.sample_formula
        assert row.within_bound
