"""Benchmark harness support.

Every benchmark regenerates one experiment row from DESIGN.md's index.
Tables are printed (visible under ``pytest -s``) *and* written to
``benchmarks/results/<name>.txt``, which is what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(name: str, table) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
