"""Benchmark harness support.

Every benchmark regenerates one experiment row from DESIGN.md's index.
Tables are printed (visible under ``pytest -s``) *and* written to
``benchmarks/results/<name>.txt``, which is what EXPERIMENTS.md quotes.
A machine-readable JSON sidecar (``<name>.json``: title, header, rows)
lands next to each text table so tooling -- dashboards, regression
gates -- can consume the same numbers without screen-scraping.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(name: str, table) -> None:
    """Print a table and persist it under benchmarks/results/.

    Writes both the rendered text (``<name>.txt``) and a JSON sidecar
    (``<name>.json``) carrying the structured title/header/rows.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    sidecar = {
        "title": table.title,
        "header": list(table.header),
        "rows": [list(row) for row in table.rows],
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2) + "\n"
    )
