"""E13: the Section 1.1 approximate-labels + correction-tables recipe."""

from repro.experiments import approximation_table, run_approximation

from conftest import record_table


def test_approximation_recipe(benchmark):
    def run():
        return run_approximation([40, 80, 120], seed=1)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E13_approximation", approximation_table(rows))
    for row in rows:
        assert row.errors_bounded      # errors confined to {0, 1, 2}
        assert row.corrected_exact     # corrections restore exactness
        assert row.coarse_total <= row.exact_total  # coarsening shrinks
    # Bits/vertex stay within a small factor of the general-graph curve
    # (the corrections' log2(3) * n term dominates, as in [AGHP16a]).
    for row in rows:
        assert row.bits_per_vertex < 4 * row.reference_bits
