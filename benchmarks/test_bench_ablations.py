"""Ablations over the design choices DESIGN.md calls out (A-D)."""

from repro.experiments import (
    cover_rule_table,
    order_table,
    pruning_table,
    run_cover_rule,
    run_order_ablation,
    run_pruning_slack,
    run_sample_factor,
    run_threshold_sweep,
    sample_factor_table,
    threshold_table,
)

from conftest import record_table


def test_threshold_sweep(benchmark):
    def run():
        return run_threshold_sweep(n=100, thresholds=[2, 3, 4, 5], seed=1)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_A_threshold", threshold_table(rows))
    for row in rows:
        assert row.valid
    # Larger D shrinks the global hitting component (fewer samples)...
    assert rows[-1].hitting_component <= rows[0].hitting_component
    # ...while the explicit near-pair machinery grows.
    assert (
        rows[-1].corrections
        + rows[-1].conflicts
        + rows[-1].neighborhoods
        >= rows[0].corrections + rows[0].conflicts + rows[0].neighborhoods
    )


def test_cover_rule(benchmark):
    def run():
        return run_cover_rule(n=100, seed=2)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_B_cover_rule", cover_rule_table(rows))
    by_rule = {r.rule: r for r in rows}
    assert all(r.valid for r in rows)
    # Koenig's minimum cover never charges more than the 2-approx.
    assert by_rule["konig"].charges <= by_rule["matching"].charges


def test_order_ablation(benchmark):
    def run():
        return run_order_ablation(scale=49, seed=3)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_C_orders", order_table(rows))
    by_key = {(r.family, r.order): r.total for r in rows}
    for family in ("grid", "tree", "sparse"):
        # Informed orders beat the random permutation on every family.
        informed = min(
            by_key[(family, name)]
            for name in ("degree", "betweenness", "eccentricity", "coverage")
        )
        assert informed <= by_key[(family, "random")]


def test_pruning_slack(benchmark):
    def run():
        return run_pruning_slack(n=60, seed=5)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_E_pruning", pruning_table(rows))
    by_name = {r.construction: r for r in rows}
    for row in rows:
        assert row.valid_after
        assert row.total_after <= row.total_before
    # PLL is canonically minimal for its order: essentially no slack.
    assert by_name["pll"].kept_fraction >= 0.95
    # The generic schemes over-provision by design.
    assert by_name["sparse-D"].kept_fraction <= 0.6
    assert by_name["rs-scheme"].kept_fraction <= 0.7


def test_sample_factor(benchmark):
    def run():
        return run_sample_factor(n=120, threshold=5, seed=4)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_D_sample_factor", sample_factor_table(rows))
    uncovered = [r.uncovered for r in rows]
    # Coverage improves monotonically with the sample budget.
    assert uncovered == sorted(uncovered, reverse=True)
    # At the proof's size the leftovers are far below the rich-pair count.
    at_one = next(r for r in rows if r.factor == 1.0)
    assert at_one.uncovered <= at_one.rich_pairs / 5


def test_gadget_effect(benchmark):
    from repro.experiments import gadget_table, run_gadget_effect

    def run():
        return run_gadget_effect([(1, 1), (2, 1), (1, 2)])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("ablation_F_gadget", gadget_table(rows))
    for row in rows:
        # The gadget inflates n, so per-vertex averages grow with the
        # instance on BOTH sides; the grid core concentrates hubs.
        assert row.g_vertices > row.h_vertices
        assert row.g_avg_hubs > row.h_avg_hubs
