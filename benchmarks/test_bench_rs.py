"""E8: Behrend sets and Ruzsa-Szemeredi graphs."""

from repro.experiments import (
    ap_free_table,
    rs_graph_table,
    run_ap_free,
    run_rs_graphs,
)

from conftest import record_table


def test_ap_free_sets(benchmark):
    def run():
        return run_ap_free([100, 1000, 10000])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E8a_ap_free", ap_free_table(rows))
    sizes = [r.behrend_size for r in rows]
    assert sizes == sorted(sizes)
    for row in rows:
        # Concrete sets beat the closed-form guarantee at these scales.
        assert row.behrend_size >= row.density_guarantee


def test_rs_graphs(benchmark):
    def run():
        return run_rs_graphs([51, 101, 201, 401], verify=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E8b_rs_graphs", rs_graph_table(rows))
    for row in rows:
        assert row.verified
        assert row.num_matchings <= row.num_vertices
        # The witness n^2/m never beats the Fox lower-bound envelope;
        # for the paper's claims only the upper direction matters:
        assert row.certified_rs >= row.envelope_low / 4
    # Relative density improves with scale: (n^2/m)/n shrinks.
    ratios = [r.certified_rs / r.num_vertices for r in rows]
    assert ratios == sorted(ratios, reverse=True)
