"""E11: the S*T trade-off for exact oracles on sparse graphs."""

from repro.experiments import oracle_table, run_oracles

from conftest import record_table


def test_oracle_tradeoff(benchmark):
    def run():
        return run_oracles(n=120, num_pairs=60, seed=3)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E11_oracles", oracle_table(rows))
    by_name = {r.oracle: r for r in rows}
    for row in rows:
        assert row.exact
    matrix = by_name["matrix"]
    hub = by_name["hub-label"]
    n = matrix.n
    # Matrix: maximal space, unit time.
    assert matrix.space_words == n * n
    assert matrix.avg_query_ops == 1
    # Hub labels trade space for per-query label scans...
    assert hub.space_words < matrix.space_words
    assert hub.avg_query_ops > matrix.avg_query_ops
    # ...but stay on the S*T >= ~n^2/polylog curve -- no oracle in the
    # suite beats the curve by an order of magnitude (Section 1's point).
    for row in rows:
        assert row.space_time_product >= n * n / 50
