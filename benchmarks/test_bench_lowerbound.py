"""E4: Theorem 2.1(iii)/1.1 -- certified lower bound vs real labelings."""

from repro.experiments import (
    lower_bound_table,
    preview_table,
    run_certificate_preview,
    run_lower_bound,
)

from conftest import record_table


def test_lower_bound_certificate_vs_measured(benchmark):
    def run():
        return run_lower_bound([(1, 1), (2, 1)], with_sparse=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E4_lower_bound", lower_bound_table(rows))
    for row in rows:
        # Every concrete labeling sits above the certificate...
        assert row.pll_respects_bound
        # ...and the proof's charging argument executes in full.
        assert row.all_charged
    # The certificate scales up with the instance.
    assert rows[-1].certificate_total >= rows[0].certificate_total


def test_lower_bound_scaling_shape(benchmark):
    """The certificate's growth across (b, l): s^{2l} / poly factors.
    No labeling construction escapes it (shape check of Theorem 1.1)."""

    def run():
        return run_lower_bound(
            [(1, 1), (1, 2), (2, 1), (2, 2)],
            with_sparse=False,
            with_audit=False,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E4_lower_bound_scaling", lower_bound_table(rows))
    for row in rows:
        assert row.measured_pll_total >= row.certificate_total


def test_certificate_preview_tail(benchmark):
    """The closed-form certificate out to n ~ 10^14 on the balanced
    diagonal b = l (the paper's parameter setting)."""

    def run():
        return run_certificate_preview(
            [(k, k) for k in range(1, 7)]
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("E4_certificate_preview", preview_table(rows))
    # Once the grid term outruns the gadget overhead (b = l >= 4), the
    # certified average grows along the diagonal -- the n^{1 - o(1)}
    # bite of Theorem 1.1.
    tail = [r.certified_average for r in rows if r.b >= 4]
    assert tail == sorted(tail)
    assert rows[-1].num_vertices > 10 ** 10
