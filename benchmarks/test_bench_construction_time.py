"""Construction-time benchmarks for every labeling algorithm.

Times (pytest-benchmark, single rounds -- constructions are not
microseconds) each construction on the same sparse graph, so the cost
side of the quality/size results in E9 is on record too.
"""

import pytest

from repro.core import (
    fast_pruned_landmark_labeling,
    greedy_hub_labeling,
    pruned_landmark_labeling,
    rs_hub_labeling,
    separator_hub_labeling,
    sparse_hub_labeling,
)
from repro.graphs import random_sparse_graph


N = 150
SEED = 11


@pytest.fixture(scope="module")
def graph():
    return random_sparse_graph(N, seed=SEED)


def test_build_pll(benchmark, graph):
    labeling = benchmark.pedantic(
        lambda: pruned_landmark_labeling(graph), rounds=3, iterations=1
    )
    assert labeling.total_size() > 0


def test_build_pll_fast(benchmark, graph):
    labeling = benchmark.pedantic(
        lambda: fast_pruned_landmark_labeling(graph), rounds=3, iterations=1
    )
    assert labeling.total_size() > 0


def test_build_greedy(benchmark, graph):
    labeling = benchmark.pedantic(
        lambda: greedy_hub_labeling(graph), rounds=1, iterations=1
    )
    assert labeling.total_size() > 0


def test_build_sparse_scheme(benchmark, graph):
    result = benchmark.pedantic(
        lambda: sparse_hub_labeling(graph, seed=1), rounds=1, iterations=1
    )
    assert result.labeling.total_size() > 0


def test_build_rs_scheme(benchmark, graph):
    result = benchmark.pedantic(
        lambda: rs_hub_labeling(graph, threshold=3, seed=1),
        rounds=1,
        iterations=1,
    )
    assert result.labeling.total_size() > 0


def test_build_separator_scheme(benchmark, graph):
    labeling = benchmark.pedantic(
        lambda: separator_hub_labeling(graph), rounds=1, iterations=1
    )
    assert labeling.total_size() > 0
